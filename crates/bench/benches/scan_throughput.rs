//! Simulator-throughput micro-benchmark: simulated field accesses per
//! wall-clock second through `System::scan`, optimized hot path vs. the
//! preserved pre-optimization reference loop (`System::scan_naive` with the
//! cache hierarchy's line-resident fast path disabled).
//!
//! This measures the *simulator*, not the modelled hardware: the number is
//! how fast experiments run, and it gates how large the scaling sweeps
//! (Figure 13 and beyond) can grow. Results are printed and written to
//! `BENCH_scan_throughput.json` in the current directory so successive PRs
//! can track the trajectory.
//!
//! ```text
//! cargo bench -p relmem-bench --bench scan_throughput \
//!     [-- --rows N] [-- --quick] [-- --cores N] [-- --model ca]
//! ```
//!
//! With `--cores N` (N > 1) the bench switches to the *multi-core sharded*
//! variant: the same table is scanned by `System::scan_sharded` on an
//! N-core system and by `System::scan` on a 1-core system, and the report
//! compares aggregate **simulated** throughput (fields per simulated
//! second) — the scaling number the shared-L2 contention model produces —
//! alongside the wall-clock simulator rate. Results go to
//! `BENCH_scan_throughput.cores<N>[.quick].json`.
//!
//! With `--model ca` the bench runs the same scan on the *cycle-accurate*
//! DRAM model (`DramConfig::model = MemoryModel::CycleAccurate`) beside the
//! default occupancy model: reported are the simulator's wall rate under
//! each model (the fidelity/speed trade), the simulated-time delta, and the
//! command-level counters (refreshes, tFAW stalls, queue occupancy) only
//! the cycle-accurate model produces. Results go to
//! `BENCH_scan_throughput.ca[.quick].json`.
//!
//! Every emitted `BENCH_*.json` carries the wall-clock spread across the
//! repetitions (mean/min/max/stddev seconds); rates keep using the best
//! (minimum) repetition, as before.

use std::time::{Duration, Instant};

use criterion::SampleStats;

use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
use relmem_core::{AccessPath, System};
use relmem_rme::HwRevision;
use relmem_sim::SimTime;
use relmem_storage::{DataGen, MvccConfig, RowTable, Schema};

/// One timed scan pass. Returns (wall seconds, simulated end, cpu, rows,
/// checksum) so the caller can both rate it and check equivalence.
fn timed_scan(
    sys: &mut System,
    source: &ScanSource<'_>,
    naive: bool,
) -> (f64, SimTime, SimTime, u64, u64) {
    sys.begin_measurement(AccessPath::DirectRowWise);
    let mut checksum = 0u64;
    let started = Instant::now();
    let per_row = |_row: u64, values: &[u64]| {
        checksum = checksum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        RowEffect::default()
    };
    let (end, cpu, rows) = if naive {
        sys.scan_naive(source, SimTime::ZERO, per_row)
    } else {
        sys.scan(source, SimTime::ZERO, per_row)
    };
    (started.elapsed().as_secs_f64(), end, cpu, rows, checksum)
}

/// Runs `f` `reps` times, asserting the simulated outputs are identical
/// across repetitions, and returns `(wall_secs_per_rep, end, cpu, rows,
/// checksum)`. Rates should use the best (minimum) repetition; the full
/// sample vector feeds the spread statistics in the emitted JSON.
fn run_reps<F: FnMut() -> (f64, SimTime, SimTime, u64, u64)>(
    reps: usize,
    mut f: F,
) -> (Vec<f64>, SimTime, SimTime, u64, u64) {
    let first = f();
    let mut secs = vec![first.0];
    for _ in 1..reps {
        let run = f();
        assert_eq!(
            (run.1, run.2, run.3, run.4),
            (first.1, first.2, first.3, first.4),
            "repeated simulation of identical input diverged"
        );
        secs.push(run.0);
    }
    (secs, first.1, first.2, first.3, first.4)
}

/// Minimum of a non-empty wall-time sample vector.
fn best(secs: &[f64]) -> f64 {
    secs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// The canonical full-run row count; the unsuffixed `BENCH_*.json` names
/// are reserved for measurements at (at least) this scale.
const FULL_ROWS: u64 = 1_000_000;

/// Writes a bench report, refusing to clobber a canonical full-run JSON
/// with a reduced-scale one. Quick runs always target `.quick.json`
/// siblings; additionally, a down-scaled `--rows` run (without `--quick`)
/// must not silently replace a committed full-run record with numbers
/// measured at an incomparable scale.
fn write_report(out: &str, json: &str, quick: bool, rows: u64) {
    let full_dest = !out.ends_with(".quick.json");
    assert!(
        !(full_dest && quick),
        "refusing to overwrite full-run {out} with a --quick run"
    );
    if full_dest && rows < FULL_ROWS {
        if let Ok(existing) = std::fs::read_to_string(out) {
            if existing.contains("\"quick\": false") {
                eprintln!(
                    "refusing to overwrite the full-run record {out} (rows >= {FULL_ROWS}) \
                     with a --rows {rows} run; pass --quick to write the .quick.json sibling"
                );
                std::process::exit(2);
            }
        }
    }
    std::fs::write(out, json).expect("write scan_throughput report");
    println!("wrote {out}");
}

/// Renders the wall-clock spread of one measurement as a JSON object
/// (mean/min/max/stddev seconds), via the vendored criterion's
/// [`SampleStats`].
fn wall_stats_json(secs: &[f64]) -> String {
    let samples: Vec<Duration> = secs.iter().map(|&s| Duration::from_secs_f64(s)).collect();
    let stats = SampleStats::from_samples(&samples);
    format!(
        "{{ \"mean\": {:.6}, \"min\": {:.6}, \"max\": {:.6}, \"stddev\": {:.6}, \"reps\": {} }}",
        stats.mean.as_secs_f64(),
        stats.min.as_secs_f64(),
        stats.max.as_secs_f64(),
        stats.stddev.as_secs_f64(),
        stats.iters
    )
}

/// One extra instrumented rep (miss-path profiling enabled) rendering the
/// per-phase attribution as a JSON `breakdown` object — through the shared
/// [`MetricsSection`] serializer, so the bench JSON and the trace layer's
/// metrics registry speak one schema. The rep runs *after* the headline
/// samples with profiling switched on only for its duration, so guard
/// costs never contaminate the throughput numbers. The instrumented wall
/// time, the unattributed remainder (hit fast path, value reads, the
/// per-row closure) and the calibrated per-guard overhead are reported
/// alongside the phase shares, so the attribution is inspectable rather
/// than a black box.
fn breakdown_json(sys: &mut System, source: &ScanSource<'_>) -> String {
    use relmem_cache::profile;
    use relmem_sim::{Metric, MetricsSection};
    profile::reset();
    profile::set_enabled(true);
    let (wall, ..) = timed_scan(sys, source, false);
    profile::set_enabled(false);
    let report = profile::report();
    let mut section = MetricsSection::new("breakdown");
    for (i, name) in profile::PHASE_NAMES.iter().enumerate() {
        let p = report.phases[i];
        section.push(Metric::accumulated(
            *name,
            "seconds",
            format!("{:.6}", p.seconds),
            p.entries,
        ));
    }
    let attributed = report.attributed_seconds();
    section.push(Metric::scalar(
        "other_seconds",
        "seconds",
        format!("{:.6}", (wall - attributed).max(0.0)),
    ));
    section.push(Metric::scalar(
        "instrumented_wall_secs",
        "seconds",
        format!("{wall:.6}"),
    ));
    section.push(Metric::scalar(
        "guard_overhead_seconds",
        "seconds",
        format!("{:.3e}", report.guard_overhead_seconds),
    ));
    section.to_json_object(4, 2)
}

/// Builds an N-core system holding the benchmark table, deterministically,
/// on the requested DRAM timing model.
fn build_system(cores: usize, rows: u64, model: relmem_sim::MemoryModel) -> (System, RowTable) {
    let schema = Schema::benchmark(4, 4, 64);
    let table_bytes = rows * 64;
    let mem_bytes = (table_bytes + (64 << 20)).next_power_of_two() as usize;
    let mut config = SystemConfig {
        cores,
        mem_bytes,
        ..SystemConfig::default()
    };
    config.platform.dram.model = model;
    let mut sys = System::with_config(config);
    let mut table = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");
    (sys, table)
}

const COLUMNS: [usize; 4] = [0, 1, 2, 3];

/// The multi-core sharded variant: aggregate simulated throughput scaling
/// of `scan_sharded` on `cores` cores over the single-core `scan`.
fn run_multicore(rows: u64, reps: usize, quick: bool, cores: usize) {
    let fields = rows * COLUMNS.len() as u64;
    println!(
        "scan_throughput (multicore): {rows} rows x {} columns on {cores} cores",
        COLUMNS.len()
    );

    // Single-core reference (simulated time baseline).
    let (mut solo, solo_table) = build_system(1, rows, relmem_sim::MemoryModel::Occupancy);
    let solo_src = ScanSource::Rows {
        table: &solo_table,
        columns: &COLUMNS,
        snapshot: None,
    };
    let (_, solo_end, _, _, solo_sum) = run_reps(reps, || timed_scan(&mut solo, &solo_src, false));

    // Sharded run on N cores.
    let (mut sys, table) = build_system(cores, rows, relmem_sim::MemoryModel::Occupancy);
    let src = ScanSource::Rows {
        table: &table,
        columns: &COLUMNS,
        snapshot: None,
    };
    // Per-core results are identical across reps (the run is deterministic,
    // asserted by run_reps), so keep the last rep's instead of re-scanning.
    let mut per_core = Vec::new();
    let (wall_secs, end, _cpu, rows_scanned, sum) = run_reps(reps, || {
        sys.begin_measurement(AccessPath::DirectRowWise);
        let mut checksum = 0u64;
        let started = Instant::now();
        let run = sys.scan_sharded(&src, SimTime::ZERO, |_core, _row, values: &[u64]| {
            checksum =
                checksum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
            RowEffect::default()
        });
        per_core = run.per_core;
        (
            started.elapsed().as_secs_f64(),
            run.end,
            run.cpu,
            run.rows,
            checksum,
        )
    });
    assert_eq!(rows_scanned, rows);
    assert_eq!(sum, solo_sum, "sharded scan changed the scanned values");

    let scaling = solo_end.as_nanos_f64() / end.as_nanos_f64();
    let sim_rate_1 = fields as f64 / solo_end.as_nanos_f64() * 1e9;
    let sim_rate_n = fields as f64 / end.as_nanos_f64() * 1e9;
    let wall_rate = fields as f64 / best(&wall_secs);
    println!("  1 core : {solo_end} simulated  ({sim_rate_1:.3e} fields/sim-s)");
    println!("  {cores} cores: {end} simulated  ({sim_rate_n:.3e} fields/sim-s)");
    println!("  aggregate simulated throughput scaling: {scaling:.2}x");
    println!("  simulator wall rate ({cores} cores): {wall_rate:.3e} fields/s");
    let mut contention = Vec::new();
    for c in &per_core {
        println!(
            "    core {}: rows={} end={} l2-contended={} delay={}",
            c.core, c.rows, c.end, c.cache.l2_contended_lookups, c.cache.l2_contention_delay
        );
        contention.push(c.cache.l2_contention_delay.as_nanos_f64());
    }
    assert!(
        per_core.iter().any(|c| c.cache.l2_contended_lookups > 0),
        "multi-core run should show shared-L2 contention"
    );
    if cores >= 4 {
        assert!(
            scaling > 2.0,
            "cores={cores} sharded scan must scale aggregate simulated \
             throughput >2x over 1 core, got {scaling:.2}x"
        );
    }

    let per_core_json: Vec<String> = contention
        .iter()
        .map(|d| format!("{d:.1}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scan_throughput_multicore\",\n  \"rows\": {rows},\n  \
         \"columns\": {},\n  \"cores\": {cores},\n  \
         \"quick\": {quick},\n  \"reps\": {reps},\n  \
         \"simulated_end_1core_ns\": {:.1},\n  \
         \"simulated_end_ns\": {:.1},\n  \
         \"aggregate_sim_throughput_scaling\": {scaling:.3},\n  \
         \"sim_fields_per_sec\": {sim_rate_n:.1},\n  \
         \"wall_fields_per_sec\": {wall_rate:.1},\n  \
         \"wall_secs\": {},\n  \
         \"per_core_l2_contention_delay_ns\": [{}],\n  \
         \"outputs_identical\": true\n}}\n",
        COLUMNS.len(),
        solo_end.as_nanos_f64(),
        end.as_nanos_f64(),
        wall_stats_json(&wall_secs),
        per_core_json.join(", ")
    );
    let suffix = if quick { ".quick" } else { "" };
    let out = format!(
        "{}/../../BENCH_scan_throughput.cores{cores}{suffix}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    write_report(&out, &json, quick, rows);
}

/// The `--model ca` variant: the same optimized scan under the occupancy
/// and the cycle-accurate DRAM model. There is no bit-identity to assert
/// across *models* (different fidelity is the point); instead the report
/// quantifies what the extra fidelity costs in simulator wall time and
/// what it changes in simulated time, plus the command-level counters only
/// the cycle-accurate model produces.
fn run_model_comparison(rows: u64, reps: usize, quick: bool) {
    use relmem_sim::MemoryModel;

    let fields = rows * COLUMNS.len() as u64;
    println!(
        "scan_throughput (model fidelity): {rows} rows x {} columns, occupancy vs cycle-accurate",
        COLUMNS.len()
    );

    let run_model = |model: MemoryModel| {
        let (mut sys, table) = build_system(1, rows, model);
        let source = ScanSource::Rows {
            table: &table,
            columns: &COLUMNS,
            snapshot: None,
        };
        let (samples, end, _, scanned, sum) =
            run_reps(reps, || timed_scan(&mut sys, &source, false));
        assert_eq!(scanned, rows);
        (samples, end, sum, sys.dram_stats().clone())
    };

    let (occ_samples, occ_end, occ_sum, occ_stats) = run_model(MemoryModel::Occupancy);
    let (ca_samples, ca_end, ca_sum, ca_stats) = run_model(MemoryModel::CycleAccurate);
    assert_eq!(occ_sum, ca_sum, "the timing model must not change the data");

    let occ_rate = fields as f64 / best(&occ_samples);
    let ca_rate = fields as f64 / best(&ca_samples);
    let slowdown = occ_rate / ca_rate;
    let sim_delta = ca_end.as_nanos_f64() / occ_end.as_nanos_f64();
    println!(
        "  occupancy:      {:.3} s wall ({occ_rate:.3e} fields/s), {occ_end} simulated",
        best(&occ_samples)
    );
    println!(
        "  cycle-accurate: {:.3} s wall ({ca_rate:.3e} fields/s), {ca_end} simulated",
        best(&ca_samples)
    );
    println!("  fidelity cost: {slowdown:.2}x wall, simulated-time ratio {sim_delta:.4}");
    println!(
        "  ca counters: refreshes={} tfaw_stalls={} queue_stalls={} avg_queue_occupancy={:.2}",
        ca_stats.refreshes,
        ca_stats.tfaw_stalls,
        ca_stats.queue_stalls,
        ca_stats.avg_queue_occupancy()
    );

    let json = format!(
        "{{\n  \"bench\": \"scan_throughput_model\",\n  \"rows\": {rows},\n  \
         \"columns\": {},\n  \
         \"quick\": {quick},\n  \"reps\": {reps},\n  \
         \"occupancy_fields_per_sec\": {occ_rate:.1},\n  \
         \"cycle_accurate_fields_per_sec\": {ca_rate:.1},\n  \
         \"fidelity_wall_slowdown\": {slowdown:.3},\n  \
         \"simulated_end_ratio_ca_over_occupancy\": {sim_delta:.4},\n  \
         \"occupancy_row_hit_rate\": {:.4},\n  \
         \"cycle_accurate_row_hit_rate\": {:.4},\n  \
         \"cycle_accurate_refreshes\": {},\n  \
         \"cycle_accurate_tfaw_stalls\": {},\n  \
         \"cycle_accurate_queue_stalls\": {},\n  \
         \"cycle_accurate_avg_queue_occupancy\": {:.3},\n  \
         \"occupancy_wall_secs\": {},\n  \
         \"cycle_accurate_wall_secs\": {},\n  \
         \"outputs_identical\": true\n}}\n",
        COLUMNS.len(),
        occ_stats.row_hit_rate(),
        ca_stats.row_hit_rate(),
        ca_stats.refreshes,
        ca_stats.tfaw_stalls,
        ca_stats.queue_stalls,
        ca_stats.avg_queue_occupancy(),
        wall_stats_json(&occ_samples),
        wall_stats_json(&ca_samples)
    );
    let suffix = if quick { ".quick" } else { "" };
    let out = format!(
        "{}/../../BENCH_scan_throughput.ca{suffix}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    write_report(&out, &json, quick, rows);
}

fn main() {
    let mut rows: u64 = 1_000_000;
    let mut reps = 3usize;
    let mut quick = false;
    let mut cores = 1usize;
    let mut model_ca = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                rows = 100_000;
                reps = 2;
                quick = true;
            }
            "--rows" => {
                rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rows requires a number");
            }
            "--cores" => {
                cores = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cores requires a number");
            }
            "--model" => {
                let m = args.next().expect("--model requires a name");
                match m.as_str() {
                    "ca" | "cycle-accurate" => model_ca = true,
                    "occupancy" => model_ca = false,
                    other => panic!("unknown model {other} (expected ca|occupancy)"),
                }
            }
            // `cargo bench` appends harness flags like --bench; ignore them.
            _ => {}
        }
    }
    if model_ca {
        assert_eq!(cores, 1, "--model ca currently runs the single-core scan");
        run_model_comparison(rows, reps, quick);
        return;
    }
    if cores > 1 {
        run_multicore(rows, reps, quick, cores);
        return;
    }
    // The paper's default relation shape: 64-byte rows, 4-byte columns; we
    // scan the first four columns.
    let schema = Schema::benchmark(4, 4, 64);
    let table_bytes = rows * 64;
    let mem_bytes = (table_bytes + (64 << 20)).next_power_of_two() as usize;
    let mut sys = System::with_revision(HwRevision::Mlp, mem_bytes);
    let mut table = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");
    let source = ScanSource::Rows {
        table: &table,
        columns: &COLUMNS,
        snapshot: None,
    };
    let fields = rows * COLUMNS.len() as u64;
    println!(
        "scan_throughput: {rows} rows x {} columns = {fields} simulated field accesses",
        COLUMNS.len()
    );

    // Optimized hot path (line-resident fast path + per-scan cursors).
    sys.set_cache_fast_path(true);
    let (opt_samples, opt_end, opt_cpu, opt_rows, opt_sum) =
        run_reps(reps, || timed_scan(&mut sys, &source, false));
    let opt_secs = best(&opt_samples);
    let opt_rate = fields as f64 / opt_secs;
    println!("  optimized:  {opt_secs:.3} s wall  ({opt_rate:.3e} fields/s)");

    // Intermediate: the old scan loop (per-field lookups, per-access
    // backend construction) on the new cache internals, fast path off.
    sys.set_cache_fast_path(false);
    let (naive_samples, naive_end, naive_cpu, naive_rows, naive_sum) =
        run_reps(reps, || timed_scan(&mut sys, &source, true));
    sys.set_cache_fast_path(true);
    let naive_secs = best(&naive_samples);
    let naive_rate = fields as f64 / naive_secs;
    println!("  naive loop: {naive_secs:.3} s wall  ({naive_rate:.3e} fields/s)");

    // Pre-optimization baseline: the seed's scan loop over the seed's data
    // structures (Vec<Vec> tag stores, HashMap pending map, Vec MSHRs,
    // allocating prefetch decisions and DRAM chunk splits).
    let (base_samples, base_end, base_cpu, base_rows, base_sum) = run_reps(reps, || {
        let mut hierarchy = relmem_bench::baseline::BaselineHierarchy::new(sys.config());
        let mut checksum = 0u64;
        let started = Instant::now();
        let (end, cpu, rows_scanned) = relmem_bench::baseline::scan_rows_baseline(
            &mut hierarchy,
            sys.mem(),
            &table,
            &COLUMNS,
            SimTime::ZERO,
            |_row, values: &[u64]| {
                checksum =
                    checksum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
                RowEffect::default()
            },
        );
        (
            started.elapsed().as_secs_f64(),
            end,
            cpu,
            rows_scanned,
            checksum,
        )
    });
    let base_secs = best(&base_samples);
    let base_rate = fields as f64 / base_secs;
    println!("  baseline:   {base_secs:.3} s wall  ({base_rate:.3e} fields/s)");

    // All three must agree on simulated results exactly.
    assert_eq!(
        (opt_end, opt_cpu, opt_rows, opt_sum),
        (naive_end, naive_cpu, naive_rows, naive_sum),
        "optimized scan diverged from the naive reference loop"
    );
    assert_eq!(
        (opt_end, opt_cpu, opt_rows, opt_sum),
        (base_end, base_cpu, base_rows, base_sum),
        "optimized scan diverged from the pre-optimization baseline"
    );

    // …including every hierarchy counter (one verification pass each).
    sys.begin_measurement(AccessPath::DirectRowWise);
    let (end, cpu, _) = sys.scan(&source, SimTime::ZERO, |_, _| RowEffect::default());
    let optimized_stats = sys.finish_measurement(end, cpu, AccessPath::DirectRowWise).cache;
    let mut hierarchy = relmem_bench::baseline::BaselineHierarchy::new(sys.config());
    relmem_bench::baseline::scan_rows_baseline(
        &mut hierarchy,
        sys.mem(),
        &table,
        &COLUMNS,
        SimTime::ZERO,
        |_, _| RowEffect::default(),
    );
    assert_eq!(
        optimized_stats,
        hierarchy.stats(),
        "optimized hierarchy counters diverged from the baseline"
    );
    let speedup = base_secs / opt_secs;
    let loop_speedup = naive_secs / opt_secs;
    println!("  speedup vs baseline:   {speedup:.2}x  (simulated output bit-identical)");
    println!("  speedup vs naive loop: {loop_speedup:.2}x");

    // One extra instrumented rep for the miss-path phase attribution.
    let breakdown = breakdown_json(&mut sys, &source);

    let json = format!(
        "{{\n  \"bench\": \"scan_throughput\",\n  \"rows\": {rows},\n  \"columns\": {},\n  \
         \"quick\": {quick},\n  \"reps\": {reps},\n  \
         \"simulated_field_accesses\": {fields},\n  \
         \"optimized_fields_per_sec\": {opt_rate:.1},\n  \
         \"naive_loop_fields_per_sec\": {naive_rate:.1},\n  \
         \"baseline_fields_per_sec\": {base_rate:.1},\n  \
         \"speedup_vs_baseline\": {speedup:.3},\n  \
         \"speedup_vs_naive_loop\": {loop_speedup:.3},\n  \
         \"optimized_wall_secs\": {},\n  \
         \"naive_loop_wall_secs\": {},\n  \
         \"baseline_wall_secs\": {},\n  \
         \"breakdown\": {breakdown},\n  \
         \"outputs_identical\": true\n}}\n",
        COLUMNS.len(),
        wall_stats_json(&opt_samples),
        wall_stats_json(&naive_samples),
        wall_stats_json(&base_samples)
    );
    // `cargo bench` runs with the package as cwd; anchor the report at the
    // workspace root. The tracked BENCH_scan_throughput.json records the
    // canonical full-scale (1M-row) measurement only; `--quick` smoke runs
    // (e.g. CI) write to an untracked sibling so they never clobber it.
    let out = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_scan_throughput.quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan_throughput.json")
    };
    write_report(out, &json, quick, rows);
}
