//! Simulator-throughput micro-benchmark: simulated field accesses per
//! wall-clock second through `System::scan`, optimized hot path vs. the
//! preserved pre-optimization reference loop (`System::scan_naive` with the
//! cache hierarchy's line-resident fast path disabled).
//!
//! This measures the *simulator*, not the modelled hardware: the number is
//! how fast experiments run, and it gates how large the scaling sweeps
//! (Figure 13 and beyond) can grow. Results are printed and written to
//! `BENCH_scan_throughput.json` in the current directory so successive PRs
//! can track the trajectory.
//!
//! ```text
//! cargo bench -p relmem-bench --bench scan_throughput [-- --rows N] [-- --quick] [-- --cores N]
//! ```
//!
//! With `--cores N` (N > 1) the bench switches to the *multi-core sharded*
//! variant: the same table is scanned by `System::scan_sharded` on an
//! N-core system and by `System::scan` on a 1-core system, and the report
//! compares aggregate **simulated** throughput (fields per simulated
//! second) — the scaling number the shared-L2 contention model produces —
//! alongside the wall-clock simulator rate. Results go to
//! `BENCH_scan_throughput.cores<N>[.quick].json`.

use std::time::Instant;

use relmem_core::system::{RowEffect, ScanSource, SystemConfig};
use relmem_core::{AccessPath, System};
use relmem_rme::HwRevision;
use relmem_sim::SimTime;
use relmem_storage::{DataGen, MvccConfig, RowTable, Schema};

/// One timed scan pass. Returns (wall seconds, simulated end, cpu, rows,
/// checksum) so the caller can both rate it and check equivalence.
fn timed_scan(
    sys: &mut System,
    source: &ScanSource<'_>,
    naive: bool,
) -> (f64, SimTime, SimTime, u64, u64) {
    sys.begin_measurement(AccessPath::DirectRowWise);
    let mut checksum = 0u64;
    let started = Instant::now();
    let per_row = |_row: u64, values: &[u64]| {
        checksum = checksum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        RowEffect::default()
    };
    let (end, cpu, rows) = if naive {
        sys.scan_naive(source, SimTime::ZERO, per_row)
    } else {
        sys.scan(source, SimTime::ZERO, per_row)
    };
    (started.elapsed().as_secs_f64(), end, cpu, rows, checksum)
}

fn best_of<F: FnMut() -> (f64, SimTime, SimTime, u64, u64)>(
    reps: usize,
    mut f: F,
) -> (f64, SimTime, SimTime, u64, u64) {
    let mut best = f();
    for _ in 1..reps {
        let run = f();
        assert_eq!(
            (run.1, run.2, run.3, run.4),
            (best.1, best.2, best.3, best.4),
            "repeated simulation of identical input diverged"
        );
        if run.0 < best.0 {
            best = run;
        }
    }
    best
}

/// Builds an N-core system holding the benchmark table, deterministically.
fn build_system(cores: usize, rows: u64) -> (System, RowTable) {
    let schema = Schema::benchmark(4, 4, 64);
    let table_bytes = rows * 64;
    let mem_bytes = (table_bytes + (64 << 20)).next_power_of_two() as usize;
    let mut sys = System::with_config(SystemConfig {
        cores,
        mem_bytes,
        ..SystemConfig::default()
    });
    let mut table = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");
    (sys, table)
}

const COLUMNS: [usize; 4] = [0, 1, 2, 3];

/// The multi-core sharded variant: aggregate simulated throughput scaling
/// of `scan_sharded` on `cores` cores over the single-core `scan`.
fn run_multicore(rows: u64, reps: usize, quick: bool, cores: usize) {
    let fields = rows * COLUMNS.len() as u64;
    println!(
        "scan_throughput (multicore): {rows} rows x {} columns on {cores} cores",
        COLUMNS.len()
    );

    // Single-core reference (simulated time baseline).
    let (mut solo, solo_table) = build_system(1, rows);
    let solo_src = ScanSource::Rows {
        table: &solo_table,
        columns: &COLUMNS,
        snapshot: None,
    };
    let (_, solo_end, _, _, solo_sum) = best_of(reps, || timed_scan(&mut solo, &solo_src, false));

    // Sharded run on N cores.
    let (mut sys, table) = build_system(cores, rows);
    let src = ScanSource::Rows {
        table: &table,
        columns: &COLUMNS,
        snapshot: None,
    };
    // Per-core results are identical across reps (the run is deterministic,
    // asserted by best_of), so keep the last rep's instead of re-scanning.
    let mut per_core = Vec::new();
    let (wall, end, _cpu, rows_scanned, sum) = best_of(reps, || {
        sys.begin_measurement(AccessPath::DirectRowWise);
        let mut checksum = 0u64;
        let started = Instant::now();
        let run = sys.scan_sharded(&src, SimTime::ZERO, |_core, _row, values: &[u64]| {
            checksum =
                checksum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
            RowEffect::default()
        });
        per_core = run.per_core;
        (
            started.elapsed().as_secs_f64(),
            run.end,
            run.cpu,
            run.rows,
            checksum,
        )
    });
    assert_eq!(rows_scanned, rows);
    assert_eq!(sum, solo_sum, "sharded scan changed the scanned values");

    let scaling = solo_end.as_nanos_f64() / end.as_nanos_f64();
    let sim_rate_1 = fields as f64 / solo_end.as_nanos_f64() * 1e9;
    let sim_rate_n = fields as f64 / end.as_nanos_f64() * 1e9;
    let wall_rate = fields as f64 / wall;
    println!("  1 core : {solo_end} simulated  ({sim_rate_1:.3e} fields/sim-s)");
    println!("  {cores} cores: {end} simulated  ({sim_rate_n:.3e} fields/sim-s)");
    println!("  aggregate simulated throughput scaling: {scaling:.2}x");
    println!("  simulator wall rate ({cores} cores): {wall_rate:.3e} fields/s");
    let mut contention = Vec::new();
    for c in &per_core {
        println!(
            "    core {}: rows={} end={} l2-contended={} delay={}",
            c.core, c.rows, c.end, c.cache.l2_contended_lookups, c.cache.l2_contention_delay
        );
        contention.push(c.cache.l2_contention_delay.as_nanos_f64());
    }
    assert!(
        per_core.iter().any(|c| c.cache.l2_contended_lookups > 0),
        "multi-core run should show shared-L2 contention"
    );
    if cores >= 4 {
        assert!(
            scaling > 2.0,
            "cores={cores} sharded scan must scale aggregate simulated \
             throughput >2x over 1 core, got {scaling:.2}x"
        );
    }

    let per_core_json: Vec<String> = contention
        .iter()
        .map(|d| format!("{d:.1}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scan_throughput_multicore\",\n  \"rows\": {rows},\n  \
         \"columns\": {},\n  \"cores\": {cores},\n  \
         \"simulated_end_1core_ns\": {:.1},\n  \
         \"simulated_end_ns\": {:.1},\n  \
         \"aggregate_sim_throughput_scaling\": {scaling:.3},\n  \
         \"sim_fields_per_sec\": {sim_rate_n:.1},\n  \
         \"wall_fields_per_sec\": {wall_rate:.1},\n  \
         \"per_core_l2_contention_delay_ns\": [{}],\n  \
         \"outputs_identical\": true\n}}\n",
        COLUMNS.len(),
        solo_end.as_nanos_f64(),
        end.as_nanos_f64(),
        per_core_json.join(", ")
    );
    let suffix = if quick { ".quick" } else { "" };
    let out = format!(
        "{}/../../BENCH_scan_throughput.cores{cores}{suffix}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::write(&out, &json).expect("write scan_throughput multicore report");
    println!("wrote {out}");
}

fn main() {
    let mut rows: u64 = 1_000_000;
    let mut reps = 3usize;
    let mut quick = false;
    let mut cores = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                rows = 100_000;
                reps = 2;
                quick = true;
            }
            "--rows" => {
                rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rows requires a number");
            }
            "--cores" => {
                cores = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cores requires a number");
            }
            // `cargo bench` appends harness flags like --bench; ignore them.
            _ => {}
        }
    }
    if cores > 1 {
        run_multicore(rows, reps, quick, cores);
        return;
    }
    // The paper's default relation shape: 64-byte rows, 4-byte columns; we
    // scan the first four columns.
    let schema = Schema::benchmark(4, 4, 64);
    let table_bytes = rows * 64;
    let mem_bytes = (table_bytes + (64 << 20)).next_power_of_two() as usize;
    let mut sys = System::with_revision(HwRevision::Mlp, mem_bytes);
    let mut table = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits");
    DataGen::new(1)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .expect("fill");
    let source = ScanSource::Rows {
        table: &table,
        columns: &COLUMNS,
        snapshot: None,
    };
    let fields = rows * COLUMNS.len() as u64;
    println!(
        "scan_throughput: {rows} rows x {} columns = {fields} simulated field accesses",
        COLUMNS.len()
    );

    // Optimized hot path (line-resident fast path + per-scan cursors).
    sys.set_cache_fast_path(true);
    let (opt_secs, opt_end, opt_cpu, opt_rows, opt_sum) =
        best_of(reps, || timed_scan(&mut sys, &source, false));
    let opt_rate = fields as f64 / opt_secs;
    println!("  optimized:  {opt_secs:.3} s wall  ({opt_rate:.3e} fields/s)");

    // Intermediate: the old scan loop (per-field lookups, per-access
    // backend construction) on the new cache internals, fast path off.
    sys.set_cache_fast_path(false);
    let (naive_secs, naive_end, naive_cpu, naive_rows, naive_sum) =
        best_of(reps, || timed_scan(&mut sys, &source, true));
    sys.set_cache_fast_path(true);
    let naive_rate = fields as f64 / naive_secs;
    println!("  naive loop: {naive_secs:.3} s wall  ({naive_rate:.3e} fields/s)");

    // Pre-optimization baseline: the seed's scan loop over the seed's data
    // structures (Vec<Vec> tag stores, HashMap pending map, Vec MSHRs,
    // allocating prefetch decisions and DRAM chunk splits).
    let (base_secs, base_end, base_cpu, base_rows, base_sum) = best_of(reps, || {
        let mut hierarchy = relmem_bench::baseline::BaselineHierarchy::new(sys.config());
        let mut checksum = 0u64;
        let started = Instant::now();
        let (end, cpu, rows_scanned) = relmem_bench::baseline::scan_rows_baseline(
            &mut hierarchy,
            sys.mem(),
            &table,
            &COLUMNS,
            SimTime::ZERO,
            |_row, values: &[u64]| {
                checksum =
                    checksum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
                RowEffect::default()
            },
        );
        (
            started.elapsed().as_secs_f64(),
            end,
            cpu,
            rows_scanned,
            checksum,
        )
    });
    let base_rate = fields as f64 / base_secs;
    println!("  baseline:   {base_secs:.3} s wall  ({base_rate:.3e} fields/s)");

    // All three must agree on simulated results exactly.
    assert_eq!(
        (opt_end, opt_cpu, opt_rows, opt_sum),
        (naive_end, naive_cpu, naive_rows, naive_sum),
        "optimized scan diverged from the naive reference loop"
    );
    assert_eq!(
        (opt_end, opt_cpu, opt_rows, opt_sum),
        (base_end, base_cpu, base_rows, base_sum),
        "optimized scan diverged from the pre-optimization baseline"
    );

    // …including every hierarchy counter (one verification pass each).
    sys.begin_measurement(AccessPath::DirectRowWise);
    let (end, cpu, _) = sys.scan(&source, SimTime::ZERO, |_, _| RowEffect::default());
    let optimized_stats = sys.finish_measurement(end, cpu, AccessPath::DirectRowWise).cache;
    let mut hierarchy = relmem_bench::baseline::BaselineHierarchy::new(sys.config());
    relmem_bench::baseline::scan_rows_baseline(
        &mut hierarchy,
        sys.mem(),
        &table,
        &COLUMNS,
        SimTime::ZERO,
        |_, _| RowEffect::default(),
    );
    assert_eq!(
        optimized_stats,
        hierarchy.stats(),
        "optimized hierarchy counters diverged from the baseline"
    );
    let speedup = base_secs / opt_secs;
    let loop_speedup = naive_secs / opt_secs;
    println!("  speedup vs baseline:   {speedup:.2}x  (simulated output bit-identical)");
    println!("  speedup vs naive loop: {loop_speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"scan_throughput\",\n  \"rows\": {rows},\n  \"columns\": {},\n  \
         \"simulated_field_accesses\": {fields},\n  \
         \"optimized_fields_per_sec\": {opt_rate:.1},\n  \
         \"naive_loop_fields_per_sec\": {naive_rate:.1},\n  \
         \"baseline_fields_per_sec\": {base_rate:.1},\n  \
         \"speedup_vs_baseline\": {speedup:.3},\n  \
         \"speedup_vs_naive_loop\": {loop_speedup:.3},\n  \
         \"outputs_identical\": true\n}}\n",
        COLUMNS.len()
    );
    // `cargo bench` runs with the package as cwd; anchor the report at the
    // workspace root. The tracked BENCH_scan_throughput.json records the
    // canonical full-scale (1M-row) measurement only; `--quick` smoke runs
    // (e.g. CI) write to an untracked sibling so they never clobber it.
    let out = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_scan_throughput.quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan_throughput.json")
    };
    std::fs::write(out, &json).expect("write scan_throughput report");
    println!("wrote {out}");
}
