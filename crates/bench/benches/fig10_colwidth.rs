//! Criterion bench for Figure 10: Q2/Q3/Q4 across column widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_colwidth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for width in [1usize, 4, 16] {
        let mut bench = Benchmark::new(BenchmarkParams {
            rows: 8_000,
            column_width: width,
            ..BenchmarkParams::default()
        });
        for query in [Query::Q2, Query::Q3, Query::Q4] {
            for path in [AccessPath::DirectRowWise, AccessPath::RmeCold] {
                let id = format!("{}_{}", query.label(), path.label().replace(' ', "_"));
                group.bench_with_input(BenchmarkId::new(id, width), &width, |b, _| {
                    b.iter(|| bench.run(query, path))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
