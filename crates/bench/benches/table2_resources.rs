//! Criterion bench for Table 2: the FPGA area model itself (it would be
//! evaluated for every candidate configuration in a design-space sweep, so
//! its cost matters for the exploration use case).

use criterion::{criterion_group, criterion_main, Criterion};
use relmem_rme::resources::{estimate_area, DeviceCapacity};
use relmem_rme::HwRevision;
use relmem_sim::RmeHwConfig;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_resources");
    group.bench_function("estimate_area_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for fetch_units in 1..=8usize {
                for spm_kb in [256usize, 512, 1024, 2048] {
                    let cfg = RmeHwConfig {
                        fetch_units,
                        data_spm_bytes: spm_kb * 1024,
                        ..RmeHwConfig::default()
                    };
                    for revision in HwRevision::all() {
                        let report = estimate_area(&cfg, revision, DeviceCapacity::zcu102());
                        total += report.bram_pct + report.lut_pct;
                    }
                }
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
