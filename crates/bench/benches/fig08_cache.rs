//! Criterion bench for Figure 8: the cache-counter collection run (Q1 with
//! counter extraction), the same workload whose counters the harness
//! tabulates.

use criterion::{criterion_group, criterion_main, Criterion};
use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};

fn bench_fig08(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_cache");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let query = Query::Q1 { projectivity: 3 };
    let mut bench = Benchmark::new(BenchmarkParams {
        rows: 8_000,
        ..BenchmarkParams::default()
    });
    for path in AccessPath::all() {
        group.bench_function(path.label().replace(' ', "_"), |b| {
            b.iter(|| {
                let run = bench.run(query, path);
                (run.measurement.cache.l1.misses, run.measurement.cache.l2.misses)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig08);
criterion_main!(benches);
