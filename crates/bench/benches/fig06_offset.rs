//! Criterion bench for Figure 6: Q0 across hardware revisions and column
//! offsets (aligned vs. bus-word-straddling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};
use relmem_rme::HwRevision;

fn bench_fig06(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_offset");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for revision in HwRevision::all() {
        for offset in [0usize, 13] {
            let params = BenchmarkParams {
                rows: 8_000,
                target_offset: Some(offset),
                revision,
                ..BenchmarkParams::default()
            };
            let mut bench = Benchmark::new(params);
            group.bench_with_input(
                BenchmarkId::new(format!("{}_cold", revision.label()), offset),
                &offset,
                |b, _| b.iter(|| bench.run(Query::Q0, AccessPath::RmeCold)),
            );
        }
    }
    // The direct baseline the revisions are compared against.
    let mut bench = Benchmark::new(BenchmarkParams {
        rows: 8_000,
        target_offset: Some(0),
        ..BenchmarkParams::default()
    });
    group.bench_function("direct_row_wise", |b| {
        b.iter(|| bench.run(Query::Q0, AccessPath::DirectRowWise))
    });
    group.finish();
}

criterion_group!(benches, bench_fig06);
criterion_main!(benches);
