//! Criterion bench for Figure 12: the hash join (Q5) through the RME vs. the
//! direct row-store join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for row_bytes in [64usize, 256] {
        let mut bench = Benchmark::new(BenchmarkParams {
            rows: 4_000,
            inner_rows: 4_000,
            row_bytes,
            column_width: 4,
            ..BenchmarkParams::default()
        });
        for path in [AccessPath::DirectRowWise, AccessPath::RmeCold] {
            group.bench_with_input(
                BenchmarkId::new(path.label().replace(' ', "_"), row_bytes),
                &row_bytes,
                |b, _| b.iter(|| bench.run(Query::Q5, path)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
