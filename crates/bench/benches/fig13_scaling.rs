//! Criterion bench for Figure 13: Q1 over growing data sizes (multi-frame
//! operation of the Reorganization Buffer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relmem_core::{AccessPath, Benchmark, BenchmarkParams, Query};

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let query = Query::Q1 { projectivity: 4 };
    // 4 MB and 16 MB tables keep the bench quick while still spanning
    // multiple Reorganization Buffer frames.
    for mb in [4u64, 16] {
        let rows = mb * 1024 * 1024 / 64;
        let mut bench = Benchmark::new(BenchmarkParams {
            rows,
            row_bytes: 64,
            column_width: 4,
            inner_rows: 0,
            ..BenchmarkParams::default()
        });
        group.throughput(Throughput::Bytes(rows * 64));
        for path in [AccessPath::DirectRowWise, AccessPath::RmeCold] {
            group.bench_with_input(
                BenchmarkId::new(path.label().replace(' ', "_"), format!("{mb}MB")),
                &mb,
                |b, _| b.iter(|| bench.run(query, path)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
