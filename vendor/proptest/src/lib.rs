//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! re-implements the slice of proptest the workspace's tests rely on:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) generating `#[test]` functions that run a strategy-driven body
//!   for a configurable number of cases,
//! * integer-range and `any::<T>()` strategies,
//! * [`collection::vec`] and [`collection::btree_set`] combinators,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its generated inputs and the deterministic case index instead. Every run
//! draws the same cases (a fixed seed mixed with the case index), so
//! failures are perfectly reproducible.
//!
//! Like real proptest, the `PROPTEST_CASES` environment variable overrides
//! the configured case count at runtime — the CI profile uses it to deepen
//! the equivalence suites without a code change.

pub mod collection;

/// Re-exports matching `proptest::prelude::*` as used in this workspace.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count to actually run: the `PROPTEST_CASES` environment
    /// variable, when set to a positive integer, overrides the configured
    /// count (both the default and explicit [`with_cases`](Self::with_cases)
    /// values) — mirroring real proptest's runtime override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising plenty of the input space each run.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skip, don't fail.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Deterministic per-case random source (xoshiro256** via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Fixed run seed: cases depend only on their index, never on wall
    /// clock or OS entropy, so every failure is reproducible.
    const RUN_SEED: u64 = 0x0DDB_1A5E_5BAD_5EED;

    /// The generator for case number `case` of a test run.
    pub fn for_case(case: u64) -> Self {
        let mut x = Self::RUN_SEED.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    /// Draws a size from the bound.
    pub fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }
}

/// Formats a failed-case report.
pub fn format_failure(test: &str, case: u64, msg: &str, inputs: &str) -> String {
    format!(
        "proptest '{test}' failed at case {case}: {msg}\n  inputs:{inputs}\n  \
         (cases are deterministic: case {case} always draws the same inputs)"
    )
}

/// The test-definition macro. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_test(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.resolved_cases() as u64 {
                let mut proptest_rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                // The body may move the inputs, so describe them up front
                // for the (rare) failure report.
                let inputs = ::std::format!(
                    concat!($("\n    ", ::std::stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "{}",
                            $crate::format_failure(::std::stringify!($name), case, &msg, &inputs)
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            ::std::stringify!($left),
            ::std::stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            l,
            r
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            ::std::stringify!($left),
            ::std::stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 1usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u64..100, 2..5),
            s in crate::collection::btree_set(0usize..10, 1..=10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() <= 10);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #[test]
        fn assume_skips_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5).map(|c| TestRng::for_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|c| TestRng::for_case(c).next_u64()).collect();
        assert_eq!(a, b);
    }

    use crate::TestRng;
}
