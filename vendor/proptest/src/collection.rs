//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use crate::{SizeRange, Strategy, TestRng};

/// Strategy producing `Vec`s of an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeSet`s of an element strategy.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set, so keep drawing (bounded) until the
        // target is reached. If the element domain is smaller than the
        // target the attempt cap keeps this terminating with a full domain.
        let mut attempts = 0usize;
        let max_attempts = 64 * target.max(1);
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        // Honour the minimum when possible; a sparse domain may leave the
        // set smaller, which real proptest would reject — our tests only
        // use domains at least as large as the requested size.
        set
    }
}

/// A set of `size` distinct elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
