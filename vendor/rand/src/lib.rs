//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of the `rand` 0.9 API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform range sampling
//! ([`RngExt::random_range`]) and Bernoulli draws ([`RngExt::random_bool`]).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high quality,
//! fully deterministic, and stable across platforms, which is all the
//! simulator's data generation needs. It is **not** the same stream as the
//! real `rand::rngs::StdRng` (ChaCha12), so datasets are reproducible within
//! this workspace but not bit-compatible with upstream `rand`.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased draw from `[0, span)` using the widening-multiply method.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift with a single rejection pass keeps the bias
    // below 2^-64, which is far below anything a test could observe.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring the `rand` 0.9 `Rng`/`RngExt`
/// surface used by the workspace.
pub trait RngExt: RngCore {
    /// Uniform draw from a range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits give a uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }
}
