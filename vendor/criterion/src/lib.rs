//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the figure benches link
//! against this minimal harness instead: it runs each benchmark closure for
//! a warm-up iteration plus `sample_size` measured iterations (bounded by
//! `measurement_time`) and prints mean wall-clock time per iteration. There
//! is no statistical analysis, outlier rejection, or HTML report — good
//! enough for smoke runs and for eyeballing relative changes.
//!
//! Supported surface: `Criterion::benchmark_group`, group `sample_size` /
//! `warm_up_time` / `measurement_time` / `throughput` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter`, `BenchmarkId::new`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness warms up with a single
    /// iteration regardless.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upper bound on measured time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = bencher.mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if !mean.is_zero() => {
                format!("  ({:.1} MiB/s)", b as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) if !mean.is_zero() => {
                format!("  ({:.0} elem/s)", e as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3?} /iter over {} iters{}",
            self.name, id, mean, bencher.iters, rate
        );
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean over the measured iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        let budget = self.measurement_time;
        let started = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            black_box(routine());
            iters += 1;
            if started.elapsed() >= budget {
                break;
            }
        }
        self.mean = started.elapsed() / iters.max(1) as u32;
        self.iters = iters;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count >= 4); // warm-up + samples
    }
}
