//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the figure benches link
//! against this minimal harness instead: it runs each benchmark closure for
//! a warm-up iteration plus `sample_size` measured iterations (bounded by
//! `measurement_time`), timing each iteration individually, and prints the
//! mean, min, max and sample standard deviation of the per-iteration
//! wall-clock time (see [`SampleStats`]). There is no outlier rejection or
//! HTML report — good enough for smoke runs and for eyeballing relative
//! changes and their run-to-run spread.
//!
//! Supported surface: `Criterion::benchmark_group`, group `sample_size` /
//! `warm_up_time` / `measurement_time` / `throughput` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter`, `BenchmarkId::new`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness warms up with a single
    /// iteration regardless.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upper bound on measured time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            stats: SampleStats::default(),
        };
        f(&mut bencher);
        let stats = &bencher.stats;
        let mean = stats.mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if !mean.is_zero() => {
                format!("  ({:.1} MiB/s)", b as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) if !mean.is_zero() => {
                format!("  ({:.0} elem/s)", e as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3?} /iter over {} iters{}  \
             [min {:.3?}, max {:.3?}, stddev {:.3?}]",
            self.name, id, mean, stats.iters, rate, stats.min, stats.max, stats.stddev
        );
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// Summary statistics of the per-iteration wall-clock samples of one
/// benchmark: mean, min, max and sample standard deviation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleStats {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Sample standard deviation (zero with fewer than two samples).
    pub stddev: Duration,
    /// Number of measured iterations.
    pub iters: u64,
}

impl SampleStats {
    /// Computes the summary of a set of per-iteration samples. Returns the
    /// default (all-zero) summary for an empty slice.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return SampleStats::default();
        }
        let n = samples.len() as f64;
        let sum: f64 = samples.iter().map(Duration::as_secs_f64).sum();
        let mean = sum / n;
        let var = if samples.len() < 2 {
            0.0
        } else {
            samples
                .iter()
                .map(|s| (s.as_secs_f64() - mean).powi(2))
                .sum::<f64>()
                / (n - 1.0)
        };
        SampleStats {
            mean: Duration::from_secs_f64(mean),
            min: *samples.iter().min().expect("non-empty"),
            max: *samples.iter().max().expect("non-empty"),
            stddev: Duration::from_secs_f64(var.sqrt()),
            iters: samples.len() as u64,
        }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    stats: SampleStats,
}

impl Bencher {
    /// Times `routine` once per sample, storing the mean/min/max/stddev
    /// over the measured iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        let budget = self.measurement_time;
        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            samples.push(t0.elapsed());
            if started.elapsed() >= budget {
                break;
            }
        }
        self.stats = SampleStats::from_samples(&samples);
    }

    /// The summary of the last [`iter`](Self::iter) call.
    pub fn stats(&self) -> SampleStats {
        self.stats
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count >= 4); // warm-up + samples
    }

    #[test]
    fn sample_stats_summarise_correctly() {
        let samples = [
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        let s = SampleStats::from_samples(&samples);
        assert_eq!(s.mean, Duration::from_millis(20));
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.iters, 3);
        // Sample stddev of {10, 20, 30} ms is 10 ms.
        assert!((s.stddev.as_secs_f64() - 0.010).abs() < 1e-9);

        let empty = SampleStats::from_samples(&[]);
        assert_eq!(empty.iters, 0);
        assert_eq!(empty.stddev, Duration::ZERO);

        let one = SampleStats::from_samples(&[Duration::from_millis(5)]);
        assert_eq!(one.mean, Duration::from_millis(5));
        assert_eq!(one.stddev, Duration::ZERO);
    }
}
