//! Golden-trace regression suite.
//!
//! Every simulator counter is deterministic: identical inputs produce
//! bit-identical statistics. This suite pins that behaviour down as data —
//! it runs a fixed seed matrix of `scan` / `scan_sharded` / `run_workload`
//! measurements and compares the end-of-run counter snapshots
//! (`HierarchyStats` per core, `SharedL2Stats`, `DramStats`, timing) against
//! checked-in fixtures under `tests/golden/`.
//!
//! An *intended* timing-model change will shift these numbers. Regenerate
//! the fixtures with
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_trace
//! ```
//!
//! and commit the diff — the point is that counter drift shows up in code
//! review as data, never silently.

use std::fmt::Write as _;
use std::path::PathBuf;

use relational_memory::cache::HierarchyStats;
use relational_memory::core::system::{RowEffect, ScanSource, SystemConfig};
use relational_memory::core::workload::{QueryStream, Workload, WorkloadOp};
use relational_memory::prelude::*;
use relmem_sim::SimTime;

// ---------------------------------------------------------------------------
// Snapshot rendering: a stable, diffable `key = value` text format.
// ---------------------------------------------------------------------------

fn put(out: &mut String, key: &str, value: impl std::fmt::Display) {
    writeln!(out, "{key} = {value}").expect("string write");
}

fn put_time(out: &mut String, key: &str, t: SimTime) {
    put(out, key, format!("{} ps", t.as_picos()));
}

fn render_hierarchy(out: &mut String, prefix: &str, h: &HierarchyStats) {
    put(out, &format!("{prefix}.l1.requests"), h.l1.requests);
    put(out, &format!("{prefix}.l1.hits"), h.l1.hits);
    put(out, &format!("{prefix}.l1.misses"), h.l1.misses);
    put(out, &format!("{prefix}.l2.requests"), h.l2.requests);
    put(out, &format!("{prefix}.l2.hits"), h.l2.hits);
    put(out, &format!("{prefix}.l2.misses"), h.l2.misses);
    put(out, &format!("{prefix}.backend_fills"), h.backend_fills);
    put(out, &format!("{prefix}.prefetches_issued"), h.prefetches_issued);
    put(out, &format!("{prefix}.prefetch_hits"), h.prefetch_hits);
    put(
        out,
        &format!("{prefix}.l2_contended_lookups"),
        h.l2_contended_lookups,
    );
    put_time(
        out,
        &format!("{prefix}.l2_contention_delay"),
        h.l2_contention_delay,
    );
}

/// Renders the full end-of-run counter snapshot of a system plus the run's
/// aggregate timing.
fn render_snapshot(sys: &System, end: SimTime, cpu: SimTime, rows: u64) -> String {
    let mut out = String::new();
    put_time(&mut out, "run.end", end);
    put_time(&mut out, "run.cpu", cpu);
    put(&mut out, "run.rows", rows);

    let mut merged = HierarchyStats::default();
    for core in 0..sys.num_cores() {
        merged.merge(sys.core_stats(core));
    }
    render_hierarchy(&mut out, "cache", &merged);
    for core in 0..sys.num_cores() {
        render_hierarchy(&mut out, &format!("core{core}"), sys.core_stats(core));
    }

    let l2 = sys.l2_stats();
    put(&mut out, "shared_l2.lookups", l2.lookups);
    put(&mut out, "shared_l2.contended_lookups", l2.contended_lookups);
    put_time(&mut out, "shared_l2.contention_delay", l2.contention_delay);
    for (core, share) in sys.l2_shares().iter().enumerate() {
        put(&mut out, &format!("shared_l2.core{core}.lookups"), share.lookups);
        put(
            &mut out,
            &format!("shared_l2.core{core}.contended_lookups"),
            share.contended_lookups,
        );
        put_time(
            &mut out,
            &format!("shared_l2.core{core}.contention_delay"),
            share.contention_delay,
        );
    }

    let dram = sys.dram_stats();
    put(&mut out, "dram.accesses", dram.accesses);
    put(&mut out, "dram.row_hits", dram.row_hits);
    put(&mut out, "dram.row_misses", dram.row_misses);
    put(&mut out, "dram.bytes_transferred", dram.bytes_transferred);
    put(&mut out, "dram.beats", dram.beats);
    put(&mut out, "dram.rme_accesses", dram.rme_accesses);
    // Explicit DRAM writes are issued only by transaction commits
    // (version-header stamps and published inserts); rendering the counter
    // only when nonzero keeps every pre-transaction fixture byte-identical.
    if dram.writes > 0 {
        put(&mut out, "dram.writes", dram.writes);
    }
    for (core, n) in dram.per_core_accesses.iter().enumerate() {
        put(&mut out, &format!("dram.core{core}.accesses"), n);
    }
    // Command-level counters exist only under the cycle-accurate model;
    // gating keeps the occupancy-model fixtures byte-identical to their
    // pre-cycle-accurate state.
    if sys.memory_model() == relmem_sim::MemoryModel::CycleAccurate {
        put(&mut out, "dram.refreshes", dram.refreshes);
        put(&mut out, "dram.tfaw_stalls", dram.tfaw_stalls);
        put(&mut out, "dram.queue_stalls", dram.queue_stalls);
        put(&mut out, "dram.queue_occupancy_sum", dram.queue_occupancy_sum);
    }
    // Writeback traffic and FR-FCFS reorders occur only on the
    // cycle-accurate event-driven path; rendering them only when nonzero
    // keeps every pre-event-queue fixture byte-identical.
    if dram.writebacks > 0 {
        put(&mut out, "dram.writebacks", dram.writebacks);
    }
    if dram.fr_fcfs_reorders > 0 {
        put(&mut out, "dram.fr_fcfs_reorders", dram.fr_fcfs_reorders);
    }
    out
}

/// Compares `actual` against the checked-in fixture, or regenerates it
/// when `GOLDEN_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.golden"));
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden fixture {} — generate it with \
             `GOLDEN_BLESS=1 cargo test --test golden_trace` and commit it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden trace {name} diverged. If the timing-model change is \
         intended, regenerate with `GOLDEN_BLESS=1 cargo test --test \
         golden_trace` and commit the fixture diff."
    );
}

// ---------------------------------------------------------------------------
// The fixed seed matrix.
// ---------------------------------------------------------------------------

const ROWS: u64 = 3_000;
const SEED: u64 = 11;

fn build(cores: usize, mvcc: MvccConfig) -> (System, RowTable) {
    build_with_model(cores, mvcc, relmem_sim::MemoryModel::Occupancy)
}

fn build_with_model(
    cores: usize,
    mvcc: MvccConfig,
    model: relmem_sim::MemoryModel,
) -> (System, RowTable) {
    let mut config = SystemConfig {
        cores,
        mem_bytes: 16 << 20,
        ..SystemConfig::default()
    };
    config.platform.dram.model = model;
    let mut sys = System::with_config(config);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys.create_table(schema, ROWS, mvcc).unwrap();
    DataGen::new(SEED)
        .fill_table(sys.mem_mut(), &mut table, ROWS)
        .unwrap();
    (sys, table)
}

fn golden_scan(name: &str, kind: &str, cores: usize) {
    golden_scan_with_model(name, kind, cores, relmem_sim::MemoryModel::Occupancy);
}

fn golden_scan_with_model(name: &str, kind: &str, cores: usize, model: relmem_sim::MemoryModel) {
    let mvcc = if kind == "rows_mvcc" {
        MvccConfig::Enabled
    } else {
        MvccConfig::Disabled
    };
    let (mut sys, table) = build_with_model(cores, mvcc, model);
    assert_eq!(sys.memory_model(), model);
    if mvcc.is_enabled() {
        for row in 0..ROWS {
            if row % 7 == 0 {
                table.mark_deleted(sys.mem_mut(), row, 5).unwrap();
            }
        }
    }
    let columns = [0usize, 2];
    let columnar;
    let var;
    let (source, path) = match kind {
        "rows" => (
            ScanSource::Rows {
                table: &table,
                columns: &columns,
                snapshot: None,
            },
            AccessPath::DirectRowWise,
        ),
        "rows_mvcc" => (
            ScanSource::Rows {
                table: &table,
                columns: &columns,
                snapshot: Some(Snapshot::at(7)),
            },
            AccessPath::DirectRowWise,
        ),
        "columnar" => {
            columnar = sys.materialize_columnar(&table).unwrap();
            (
                ScanSource::Columnar {
                    table: &columnar,
                    columns: &columns,
                },
                AccessPath::DirectColumnar,
            )
        }
        "ephemeral" => {
            var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0, 2]).unwrap(), None)
                .unwrap();
            (ScanSource::Ephemeral { var: &var }, AccessPath::RmeCold)
        }
        other => panic!("unknown kind {other}"),
    };
    sys.begin_measurement(path);
    let snapshot = if cores == 1 {
        let (end, cpu, rows) = sys.scan(&source, SimTime::ZERO, |_, _| RowEffect::default());
        render_snapshot(&sys, end, cpu, rows)
    } else {
        let run = sys.scan_sharded(&source, SimTime::ZERO, |_, _, _| RowEffect::default());
        render_snapshot(&sys, run.end, run.cpu, run.rows)
    };
    check_golden(name, &snapshot);
}

#[test]
fn golden_scan_rows_1core() {
    golden_scan("scan_rows_1core", "rows", 1);
}

/// The same fixed-seed scan as `scan_rows_1core`, run on the cycle-accurate
/// DRAM model — regression-locks the command-level counters (refreshes,
/// tFAW stalls, queue occupancy) from day one.
#[test]
fn golden_scan_rows_1core_ca() {
    golden_scan_with_model(
        "scan_rows_1core_ca",
        "rows",
        1,
        relmem_sim::MemoryModel::CycleAccurate,
    );
}

#[test]
fn golden_scan_rows_mvcc_1core() {
    golden_scan("scan_rows_mvcc_1core", "rows_mvcc", 1);
}

#[test]
fn golden_scan_columnar_1core() {
    golden_scan("scan_columnar_1core", "columnar", 1);
}

#[test]
fn golden_scan_ephemeral_1core() {
    golden_scan("scan_ephemeral_1core", "ephemeral", 1);
}

#[test]
fn golden_sharded_rows_2core() {
    golden_scan("sharded_rows_2core", "rows", 2);
}

#[test]
fn golden_sharded_rows_4core() {
    golden_scan("sharded_rows_4core", "rows", 4);
}

#[test]
fn golden_sharded_ephemeral_4core() {
    golden_scan("sharded_ephemeral_4core", "ephemeral", 4);
}

/// A mixed HTAP workload: OLTP point stream with a mid-stream MVCC
/// snapshot on core 0, an analytical scan on core 1.
#[test]
fn golden_workload_htap_2core() {
    let (mut sys, table) = build(2, MvccConfig::Enabled);
    let scan_columns = [0usize];
    let oltp_columns = [1usize, 3];
    let mut ops = vec![WorkloadOp::TakeSnapshot { ts: 3 }];
    for i in 0..60u64 {
        let row = i.wrapping_mul(2654435761) % ROWS;
        ops.push(match i % 6 {
            4 => WorkloadOp::PointUpdate {
                table: &table,
                row,
                column: 1,
                value: i,
            },
            5 => WorkloadOp::PointDelete {
                table: &table,
                row,
                ts: 9,
            },
            _ => WorkloadOp::PointLookup {
                table: &table,
                columns: &oltp_columns,
                row,
            },
        });
    }
    let workload = Workload::new(vec![
        QueryStream::new(ops),
        QueryStream::new(vec![WorkloadOp::OlapScan {
            source: ScanSource::Rows {
                table: &table,
                columns: &scan_columns,
                snapshot: Some(Snapshot::at(2)),
            },
            stream_snapshot: false,
        }]),
    ]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, row, _| RowEffect {
            cpu: SimTime::from_nanos(row % 3),
            touch: None,
        })
        .expect("valid workload");
    check_golden(
        "workload_htap_2core",
        &render_snapshot(&sys, run.end, run.cpu, run.rows),
    );
}

/// An update-heavy point stream on the cycle-accurate model: the working
/// set overflows the L2, so dirty lines are evicted mid-stream and the
/// event-driven completion queue turns those evictions into real DRAM
/// writes scheduled through the FR-FCFS write buffer. This is the first
/// fixture where `dram.writebacks` (and, when the buffer reorders,
/// `dram.fr_fcfs_reorders`) appear.
#[test]
fn golden_update_heavy_ca_event() {
    const BIG_ROWS: u64 = 40_000;
    let mut config = SystemConfig {
        cores: 1,
        mem_bytes: 16 << 20,
        ..SystemConfig::default()
    };
    config.platform.dram.model = relmem_sim::MemoryModel::CycleAccurate;
    let mut sys = System::with_config(config);
    assert!(sys.event_driven(), "event-driven mode is the default");
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys
        .create_table(schema, BIG_ROWS, MvccConfig::Disabled)
        .unwrap();
    DataGen::new(SEED)
        .fill_table(sys.mem_mut(), &mut table, BIG_ROWS)
        .unwrap();
    let columns = [1usize];
    let ops: Vec<WorkloadOp> = (0..30_000u64)
        .map(|i| {
            let row = i.wrapping_mul(2654435761) % BIG_ROWS;
            if i % 2 == 0 {
                WorkloadOp::PointUpdate {
                    table: &table,
                    row,
                    column: 1,
                    value: i,
                }
            } else {
                WorkloadOp::PointLookup {
                    table: &table,
                    columns: &columns,
                    row,
                }
            }
        })
        .collect();
    let workload = Workload::new(vec![QueryStream::new(ops)]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    let snapshot = render_snapshot(&sys, run.end, run.cpu, run.rows);
    assert!(
        snapshot.contains("dram.writebacks"),
        "writeback traffic must appear in this fixture"
    );
    check_golden("update_heavy_ca_event", &snapshot);
}

/// Appends the run's transaction accounting to a snapshot, so the fixture
/// reviews commit/abort drift alongside the hardware counters.
fn render_txn(out: &mut String, txn: &relmem_sim::TxnStats) {
    put(out, "txn.begun", txn.begun);
    put(out, "txn.committed", txn.committed);
    put(out, "txn.aborted_conflict", txn.aborted_conflict);
    put(out, "txn.aborted_shed", txn.aborted_shed);
    put(out, "txn.rows_inserted", txn.rows_inserted);
}

/// A transactional HTAP mix: core 0 runs multi-row MVCC transactions
/// (read-modify-write pairs plus a delete), core 1 a concurrent snapshot
/// scan. Commit stamps force version headers to DRAM, so this is the first
/// fixture where `dram.writes` appears.
#[test]
fn golden_txn_mixed_2core() {
    use relational_memory::core::{TxnOp, TxnSpec};

    let (mut sys, table) = build(2, MvccConfig::Enabled);
    let read_columns = [1usize, 3];
    let scan_columns = [0usize];
    let specs: Vec<TxnSpec> = (0..12u64)
        .map(|i| {
            let a = i.wrapping_mul(2654435761) % ROWS;
            let b = (a + 1) % ROWS;
            let mut ops = vec![
                TxnOp::Read {
                    table: &table,
                    columns: &read_columns,
                    row: a,
                },
                TxnOp::Update {
                    table: &table,
                    row: a,
                    column: 1,
                    value: i,
                },
                TxnOp::Read {
                    table: &table,
                    columns: &read_columns,
                    row: b,
                },
                TxnOp::Update {
                    table: &table,
                    row: b,
                    column: 2,
                    value: i + 100,
                },
            ];
            if i % 4 == 3 {
                ops.push(TxnOp::Delete {
                    table: &table,
                    row: (a + 2) % ROWS,
                });
            }
            TxnSpec::new(ops)
        })
        .collect();
    let txn_ops: Vec<WorkloadOp> = specs.iter().map(|spec| WorkloadOp::Txn { spec }).collect();
    let workload = Workload::new(vec![
        QueryStream::new(txn_ops),
        QueryStream::new(vec![WorkloadOp::OlapScan {
            source: ScanSource::Rows {
                table: &table,
                columns: &scan_columns,
                snapshot: Some(Snapshot::at(2)),
            },
            stream_snapshot: false,
        }]),
    ]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, row, _| RowEffect {
            cpu: SimTime::from_nanos(row % 3),
            touch: None,
        })
        .expect("valid workload");
    assert_eq!(run.txn.committed, 12, "a sequential stream never conflicts");
    assert!(run.txn.is_consistent());
    let mut snapshot = render_snapshot(&sys, run.end, run.cpu, run.rows);
    render_txn(&mut snapshot, &run.txn);
    check_golden("txn_mixed_2core", &snapshot);
}

/// Insert-publishing transactions on one core: the table is created with
/// append headroom and each transaction publishes two fresh rows (cold
/// cache lines plus explicit DRAM writes) next to a point read.
#[test]
fn golden_txn_insert_1core() {
    use relational_memory::core::{TxnOp, TxnSpec};

    let mut config = SystemConfig {
        cores: 1,
        mem_bytes: 16 << 20,
        ..SystemConfig::default()
    };
    config.platform.dram.model = relmem_sim::MemoryModel::Occupancy;
    let mut sys = System::with_config(config);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys
        .create_table(schema, ROWS + 32, MvccConfig::Disabled)
        .unwrap();
    DataGen::new(SEED)
        .fill_table(sys.mem_mut(), &mut table, ROWS)
        .unwrap();

    let read_columns = [0usize, 2];
    let value_rows: Vec<[u64; 5]> = (0..16u64)
        .map(|i| [i, i + 1, i + 2, i + 3, 0])
        .collect();
    let specs: Vec<TxnSpec> = value_rows
        .chunks(2)
        .enumerate()
        .map(|(t, chunk)| {
            let mut ops = vec![TxnOp::Read {
                table: &table,
                columns: &read_columns,
                row: (t as u64).wrapping_mul(2654435761) % ROWS,
            }];
            for values in chunk {
                ops.push(TxnOp::Insert {
                    table: &table,
                    columnar: None,
                    values,
                });
            }
            TxnSpec::new(ops)
        })
        .collect();
    let txn_ops: Vec<WorkloadOp> = specs.iter().map(|spec| WorkloadOp::Txn { spec }).collect();
    let workload = Workload::new(vec![QueryStream::new(txn_ops)]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    assert_eq!(run.txn.committed, 8);
    assert_eq!(run.txn.rows_inserted, 16);
    assert_eq!(table.num_rows(), ROWS + 16);
    let mut snapshot = render_snapshot(&sys, run.end, run.cpu, run.rows);
    render_txn(&mut snapshot, &run.txn);
    check_golden("txn_insert_1core", &snapshot);
}

/// A single-stream workload on one core — pinned to the same numbers as
/// `scan_rows_1core` would produce through `System::scan` (the equivalence
/// the proptests prove; the fixture makes it reviewable data).
#[test]
fn golden_workload_single_stream_1core() {
    let (mut sys, table) = build(1, MvccConfig::Disabled);
    let columns = [0usize, 2];
    let workload = Workload::new(vec![QueryStream::new(vec![WorkloadOp::olap(
        ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        },
    )])]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    check_golden(
        "workload_single_stream_1core",
        &render_snapshot(&sys, run.end, run.cpu, run.rows),
    );
}
