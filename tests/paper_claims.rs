//! End-to-end checks of the paper's qualitative claims on scaled-down
//! workloads: orderings, crossovers and stability — the properties
//! EXPERIMENTS.md reports at full scale.

use relational_memory::prelude::*;

fn bench(rows: u64) -> Benchmark {
    Benchmark::new(BenchmarkParams {
        rows,
        inner_rows: rows,
        ..BenchmarkParams::default()
    })
}

/// Section 6.3, Figure 6: the hardware revisions are strictly ordered and
/// the most optimised revision (MLP) serves a cold single-column projection
/// faster than reading the rows directly from DRAM.
#[test]
fn hardware_revisions_are_ordered_and_mlp_beats_direct_access() {
    let mut elapsed = Vec::new();
    for revision in HwRevision::all() {
        let mut b = Benchmark::new(BenchmarkParams {
            rows: 8_000,
            target_offset: Some(0),
            revision,
            ..BenchmarkParams::default()
        });
        let cold = b.run(Query::Q0, AccessPath::RmeCold).measurement.elapsed;
        let hot = b.run(Query::Q0, AccessPath::RmeHot).measurement.elapsed;
        let direct = b.run(Query::Q0, AccessPath::DirectRowWise).measurement.elapsed;
        assert!(hot <= cold, "{}: hot must not exceed cold", revision.label());
        elapsed.push((revision, cold, direct));
    }
    let (_, bsl_cold, _) = elapsed[0];
    let (_, pck_cold, _) = elapsed[1];
    let (_, mlp_cold, direct) = elapsed[2];
    assert!(bsl_cold > pck_cold, "the packer must improve on the baseline");
    assert!(pck_cold > mlp_cold, "memory-level parallelism must improve on the packer");
    assert!(
        mlp_cold < direct,
        "MLP cold ({mlp_cold}) must beat direct row-wise access ({direct})"
    );
    assert!(
        bsl_cold.as_nanos_f64() > 3.0 * direct.as_nanos_f64(),
        "BSL cold ({bsl_cold}) must be several times slower than direct access ({direct})"
    );
}

/// Figure 6: the projected column's offset does not change RME performance,
/// except for the slight penalty when the field straddles a bus word.
#[test]
fn column_offset_does_not_matter_except_for_bus_word_straddling() {
    let run_at = |offset: usize| {
        let mut b = Benchmark::new(BenchmarkParams {
            rows: 8_000,
            target_offset: Some(offset),
            ..BenchmarkParams::default()
        });
        b.run(Query::Q0, AccessPath::RmeCold).measurement.elapsed.as_nanos_f64()
    };
    let aligned: Vec<f64> = [0usize, 16, 32, 48].iter().map(|&o| run_at(o)).collect();
    let straddling = run_at(13);
    let min = aligned.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = aligned.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.05,
        "aligned offsets should perform identically (min {min}, max {max})"
    );
    assert!(
        straddling >= max,
        "a straddling field must not be faster than aligned ones"
    );
}

/// Figures 7 and 9: the RME beats direct row-wise access for projection
/// queries, and the projectivity crossover against the column store exists —
/// the column store is competitive at low projectivity and loses at high
/// projectivity.
#[test]
fn projectivity_crossover_exists() {
    let mut b = bench(8_000);
    let ratio = |b: &mut Benchmark, k: usize, path: AccessPath| {
        let q = Query::Q1 { projectivity: k };
        let base = b.run(q, AccessPath::DirectRowWise).measurement.elapsed.as_nanos_f64();
        b.run(q, path).measurement.elapsed.as_nanos_f64() / base
    };
    for k in [1, 3, 8, 11] {
        assert!(
            ratio(&mut b, k, AccessPath::RmeCold) < 1.0,
            "RME must beat direct row-wise access at projectivity {k}"
        );
    }
    // Low projectivity: the column store is at least as good as the RME.
    let col_low = ratio(&mut b, 1, AccessPath::DirectColumnar);
    let rme_low = ratio(&mut b, 1, AccessPath::RmeCold);
    assert!(col_low <= rme_low * 1.05, "columnar should win (or tie) at k=1");
    // High projectivity: the column store falls behind both.
    let col_high = ratio(&mut b, 11, AccessPath::DirectColumnar);
    let rme_high = ratio(&mut b, 11, AccessPath::RmeCold);
    assert!(
        col_high > rme_high,
        "the RME must beat the column store at high projectivity"
    );
    assert!(col_high > 1.0, "tuple reconstruction must hurt the column store at k=11");
}

/// Figure 8: the RME pollutes the caches less than direct row-wise access.
#[test]
fn rme_reduces_cache_misses() {
    let mut b = bench(8_000);
    let q = Query::Q1 { projectivity: 3 };
    let direct = b.run(q, AccessPath::DirectRowWise).measurement;
    let rme = b.run(q, AccessPath::RmeCold).measurement;
    assert!(
        rme.cache.l1.misses * 2 < direct.cache.l1.misses,
        "RME L1 misses ({}) should be far below direct row-wise ({})",
        rme.cache.l1.misses,
        direct.cache.l1.misses
    );
    assert!(rme.cache.l2.misses < direct.cache.l2.misses);
}

/// Figure 11: direct row-wise access degrades with the row width, the RME
/// stays roughly flat, so the gain grows with the row size.
#[test]
fn rme_benefit_grows_with_row_width() {
    let gain_at = |row_bytes: usize| {
        let mut b = Benchmark::new(BenchmarkParams {
            rows: 8_000,
            row_bytes,
            column_width: 4,
            ..BenchmarkParams::default()
        });
        let direct = b.run(Query::Q2, AccessPath::DirectRowWise).measurement.elapsed;
        let rme = b.run(Query::Q2, AccessPath::RmeCold).measurement.elapsed;
        direct.as_nanos_f64() / rme.as_nanos_f64()
    };
    let narrow = gain_at(16);
    let wide = gain_at(256);
    assert!(wide > narrow, "gain at 256 B rows ({wide:.2}x) must exceed 16 B rows ({narrow:.2}x)");
    assert!(wide > 1.2, "the gain at wide rows should be substantial, got {wide:.2}x");
}

/// Figure 12: the join's CPU share is path-independent while the RME reduces
/// the data-movement share.
#[test]
fn join_data_movement_is_reduced_but_cpu_cost_is_identical() {
    let mut b = Benchmark::new(BenchmarkParams {
        rows: 6_000,
        inner_rows: 6_000,
        row_bytes: 128,
        column_width: 4,
        ..BenchmarkParams::default()
    });
    let direct = b.run(Query::Q5, AccessPath::DirectRowWise).measurement;
    let rme = b.run(Query::Q5, AccessPath::RmeCold).measurement;
    let cpu_delta = (direct.cpu_time.as_nanos_f64() - rme.cpu_time.as_nanos_f64()).abs()
        / direct.cpu_time.as_nanos_f64();
    assert!(cpu_delta < 0.02, "CPU time must be path-independent (delta {cpu_delta:.3})");
    assert!(
        rme.data_time() < direct.data_time(),
        "the RME must reduce the data-movement share"
    );
    assert!(rme.elapsed <= direct.elapsed, "the join must not get slower through the RME");
}

/// Figure 13: the relative benefit of the RME is stable as the data size
/// grows past the Data SPM capacity (multi-frame operation).
#[test]
fn scaling_keeps_the_benefit_roughly_constant() {
    let normalized = |rows: u64| {
        let mut b = Benchmark::new(BenchmarkParams {
            rows,
            row_bytes: 64,
            column_width: 4,
            inner_rows: 0,
            ..BenchmarkParams::default()
        });
        let q = Query::Q1 { projectivity: 4 };
        let direct = b.run(q, AccessPath::DirectRowWise).measurement.elapsed.as_nanos_f64();
        let run = b.run(q, AccessPath::RmeCold);
        (run.measurement.elapsed.as_nanos_f64() / direct, run.measurement.rme.frames_fetched)
    };
    // 16 MB and 48 MB tables: the 4-column, 4-byte projection packs to 4 MB
    // and 12 MB respectively, i.e. 2 and 6 frames of the 2 MB Data SPM.
    let (small, frames_small) = normalized(16 * 1024 * 1024 / 64);
    let (large, frames_large) = normalized(48 * 1024 * 1024 / 64);
    assert!(frames_small >= 2, "the small table must already span multiple frames");
    assert!(frames_large > frames_small);
    assert!(small < 1.0 && large < 1.0, "the RME must win at both sizes");
    assert!(
        (small - large).abs() < 0.1,
        "normalized cost should be stable across sizes ({small:.3} vs {large:.3})"
    );
}
