//! System-level tests of the DRAM model selector: the cycle-accurate
//! model plugs in behind `DramConfig::model` and every access path —
//! direct rows, columnar, ephemeral (RME), sharded, workload — produces
//! the same *data* on either model, while only the timing fidelity
//! differs. Command-level timing itself is unit- and property-tested in
//! `crates/dram/src/controller_ca.rs`; the golden fixture
//! `tests/golden/scan_rows_1core_ca.golden` locks the counters.

use relational_memory::core::system::{RowEffect, ScanSource, SystemConfig};
use relational_memory::prelude::*;
use relmem_sim::{MemoryModel, SimTime};

fn build(model: MemoryModel, cores: usize, rows: u64) -> (System, RowTable) {
    let mut config = SystemConfig {
        cores,
        mem_bytes: 32 << 20,
        ..SystemConfig::default()
    };
    config.platform.dram.model = model;
    let mut sys = System::with_config(config);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys.create_table(schema, rows, MvccConfig::Disabled).unwrap();
    DataGen::new(5)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .unwrap();
    (sys, table)
}

/// Scans one column through `path` and returns `(checksum, end)`.
fn scan_checksum(model: MemoryModel, rows: u64, path: AccessPath) -> (u64, SimTime) {
    let (mut sys, table) = build(model, 1, rows);
    assert_eq!(sys.memory_model(), model);
    let columns = [0usize, 2];
    let columnar;
    let var;
    let source = match path {
        AccessPath::DirectColumnar => {
            columnar = sys.materialize_columnar(&table).unwrap();
            ScanSource::Columnar {
                table: &columnar,
                columns: &columns,
            }
        }
        AccessPath::RmeCold => {
            var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0, 2]).unwrap(), None)
                .unwrap();
            ScanSource::Ephemeral { var: &var }
        }
        _ => ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        },
    };
    sys.begin_measurement(path);
    let mut sum = 0u64;
    let (end, _, scanned) = sys.scan(&source, SimTime::ZERO, |_, values| {
        sum = sum
            .wrapping_add(values[0])
            .wrapping_add(values[1].rotate_left(7));
        RowEffect::default()
    });
    assert_eq!(scanned, rows);
    (sum, end)
}

#[test]
fn both_models_scan_identical_data_on_every_path() {
    for path in [
        AccessPath::DirectRowWise,
        AccessPath::DirectColumnar,
        AccessPath::RmeCold,
    ] {
        let (occ_sum, occ_end) = scan_checksum(MemoryModel::Occupancy, 3_000, path);
        let (ca_sum, ca_end) = scan_checksum(MemoryModel::CycleAccurate, 3_000, path);
        assert_eq!(occ_sum, ca_sum, "{path:?}: the timing model changed the data");
        assert!(occ_end > SimTime::ZERO && ca_end > SimTime::ZERO);
    }
}

#[test]
fn cycle_accurate_runs_are_deterministic_at_system_level() {
    let a = scan_checksum(MemoryModel::CycleAccurate, 2_000, AccessPath::DirectRowWise);
    let b = scan_checksum(MemoryModel::CycleAccurate, 2_000, AccessPath::DirectRowWise);
    assert_eq!(a, b);
}

#[test]
fn cycle_accurate_counters_reach_the_measurement() {
    let (mut sys, table) = build(MemoryModel::CycleAccurate, 1, 5_000);
    let columns = [0usize];
    let source = ScanSource::Rows {
        table: &table,
        columns: &columns,
        snapshot: None,
    };
    sys.begin_measurement(AccessPath::DirectRowWise);
    let (end, cpu, _) = sys.scan(&source, SimTime::ZERO, |_, _| RowEffect::default());
    let m = sys.finish_measurement(end, cpu, AccessPath::DirectRowWise);
    // A multi-hundred-microsecond scan crosses many tREFI windows.
    assert!(
        m.dram.refreshes > 0,
        "a long cycle-accurate scan must observe refreshes"
    );
    assert!(m.dram.queue_occupancy_sum > 0, "prefetches overlap in the queue");
    // And begin_measurement resets the command-level state too.
    sys.begin_measurement(AccessPath::DirectRowWise);
    assert_eq!(sys.dram_stats().refreshes, 0);
}

#[test]
fn sharded_scans_run_on_the_cycle_accurate_model() {
    let (mut sys, table) = build(MemoryModel::CycleAccurate, 4, 10_000);
    let columns = [0usize, 1, 2, 3];
    let source = ScanSource::Rows {
        table: &table,
        columns: &columns,
        snapshot: None,
    };
    sys.begin_measurement(AccessPath::DirectRowWise);
    let mut sum = 0u64;
    let run = sys.scan_sharded(&source, SimTime::ZERO, |_, _, values| {
        sum = sum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        RowEffect::default()
    });
    assert_eq!(run.rows, 10_000);

    // Same world, occupancy model: identical data.
    let (mut occ, table2) = build(MemoryModel::Occupancy, 4, 10_000);
    let source2 = ScanSource::Rows {
        table: &table2,
        columns: &columns,
        snapshot: None,
    };
    occ.begin_measurement(AccessPath::DirectRowWise);
    let mut occ_sum = 0u64;
    let occ_run = occ.scan_sharded(&source2, SimTime::ZERO, |_, _, values| {
        occ_sum = occ_sum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        RowEffect::default()
    });
    assert_eq!(sum, occ_sum);
    assert_eq!(run.rows, occ_run.rows);
}
