//! Differential sync-vs-event test harness.
//!
//! The event-driven memory path (`DramModel::issue` / `drain_completions`,
//! incremental descriptor-window fetching, demand-priority admission) is a
//! *timing* refactor: it must never change what the simulator computes,
//! and on every run whose DRAM traffic comes from a single requestor class
//! it must not even change *when*. This suite pins that contract as
//! property tests, mirroring `tests/cross_path_equivalence.rs`:
//!
//! * **Single-source runs are bit-identical** (occupancy model): for
//!   scan / sharded / workload / txn over Rows, Columnar and Ephemeral
//!   sources, with and without MVCC, the event-driven path reproduces the
//!   synchronous path's completion time, CPU time, values and every
//!   cache/DRAM/RME counter. Direct sources issue only CPU (demand-class)
//!   traffic and ephemeral sources only engine (paced-class) traffic, and
//!   each admission class alone degenerates to the plain FIFO
//!   [`Resource`](relmem_sim::Resource) the synchronous path uses.
//! * **Mixed RME + CPU runs keep data and traffic totals** (occupancy
//!   model): once both classes share a bank, demand priority legitimately
//!   shifts timing (that honest overlap is the point of the refactor), so
//!   the invariant weakens to everything data-determined: per-stream row
//!   counts and value traces, engine fetch counts, write counts and
//!   transaction accounting.
//! * **Cycle-accurate divergences are confined to timing**: event mode
//!   additionally buffers writes into the FR-FCFS window, which may
//!   reorder commands and shift row-buffer locality — but values, row
//!   counts and traffic totals (accesses, writes, chunks) must match the
//!   synchronous cycle-accurate run exactly.
//! * **Writeback timing**: dirty L2 evictions become real DRAM writes only
//!   under the cycle-accurate model in event mode, where tWR/tWTR exist to
//!   observe them — they must cost time there and change nothing anywhere
//!   else.

use proptest::prelude::*;
use relational_memory::cache::HierarchyStats;
use relational_memory::core::system::{RowEffect, ScanSource, SystemConfig};
use relational_memory::core::workload::{QueryStream, Workload, WorkloadOp};
use relational_memory::core::{TxnOp, TxnSpec};
use relational_memory::dram::DramStats;
use relational_memory::prelude::*;
use relmem_sim::{MemoryModel, SimTime, TxnStats};

const ROWS_CAP: u64 = 400;

/// Per-stream `(row, projected values)` traces.
type Traces = Vec<Vec<(u64, Vec<u64>)>>;

/// Everything observable about one run.
#[derive(Debug, Clone, PartialEq)]
struct RunRecord {
    end: SimTime,
    cpu: SimTime,
    rows: u64,
    /// Per-stream `(row, projected values)` traces. Per-stream order is
    /// deterministic regardless of how the interleaver schedules cores.
    traces: Traces,
    cache: HierarchyStats,
    dram: DramStats,
    rme: relational_memory::rme::RmeStats,
    txn: TxnStats,
}

impl RunRecord {
    /// The data-determined subset that must survive any timing change:
    /// row counts, value traces, engine fetch counts, writes and
    /// transaction accounting.
    fn data_view(&self) -> (u64, &Traces, u64, u64, u64, &TxnStats) {
        (
            self.rows,
            &self.traces,
            self.dram.rme_accesses,
            self.dram.writes,
            self.dram.row_hits + self.dram.row_misses,
            &self.txn,
        )
    }
}

/// Which runner a case goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Runner {
    /// `System::scan` on one core.
    Scan,
    /// `System::scan_sharded` on `cores` cores.
    Sharded(usize),
    /// `System::run_workload`: every core runs one single-scan stream.
    Workload(usize),
    /// `System::run_workload`: core 0 runs conflict-free transactions
    /// (reads + updates), core 1 a concurrent scan of the same source.
    Txn,
}

/// Which scan source every stream of a case uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Rows,
    RowsMvcc,
    Columnar,
    EphemeralCold,
    EphemeralHot,
}

const ALL_SOURCES: [Source; 5] = [
    Source::Rows,
    Source::RowsMvcc,
    Source::Columnar,
    Source::EphemeralCold,
    Source::EphemeralHot,
];

fn build_system(cores: usize, model: MemoryModel, event: bool) -> System {
    let mut config = SystemConfig {
        cores,
        mem_bytes: 32 << 20,
        event_driven: event,
        ..SystemConfig::default()
    };
    config.platform.dram.model = model;
    System::with_config(config)
}

/// Builds an identical world per call and runs one case. Every divergence
/// between two calls differing only in `event` is attributable to the
/// event-driven memory path.
fn run_case(
    runner: Runner,
    source: Source,
    model: MemoryModel,
    event: bool,
    seed: u64,
    rows: u64,
) -> RunRecord {
    let cores = match runner {
        Runner::Scan => 1,
        Runner::Sharded(n) | Runner::Workload(n) => n,
        Runner::Txn => 2,
    };
    let mut sys = build_system(cores, model, event);
    assert_eq!(sys.event_driven(), event);
    let mvcc = source == Source::RowsMvcc;
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys
        .create_table(
            schema,
            rows,
            if mvcc {
                MvccConfig::Enabled
            } else {
                MvccConfig::Disabled
            },
        )
        .unwrap();
    DataGen::new(seed)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .unwrap();
    if mvcc {
        for row in 0..rows {
            if row.wrapping_mul(2654435761) % 3 == 0 {
                table.mark_deleted(sys.mem_mut(), row, 5).unwrap();
            }
        }
    }
    let snapshot = mvcc.then(|| Snapshot::at(7));
    let columns = [0usize, 2];

    let columnar;
    let var;
    let (scan_source, path) = match source {
        Source::Rows | Source::RowsMvcc => (
            ScanSource::Rows {
                table: &table,
                columns: &columns,
                snapshot,
            },
            AccessPath::DirectRowWise,
        ),
        Source::Columnar => {
            columnar = sys.materialize_columnar(&table).unwrap();
            (
                ScanSource::Columnar {
                    table: &columnar,
                    columns: &columns,
                },
                AccessPath::DirectColumnar,
            )
        }
        Source::EphemeralCold | Source::EphemeralHot => {
            var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0, 2]).unwrap(), snapshot)
                .unwrap();
            (
                ScanSource::Ephemeral { var: &var },
                if source == Source::EphemeralHot {
                    AccessPath::RmeHot
                } else {
                    AccessPath::RmeCold
                },
            )
        }
    };

    // Conflict-free transactions over disjoint row stripes (Txn runner).
    let read_columns = [1usize, 3];
    let specs: Vec<TxnSpec> = (0..4u64)
        .map(|t| {
            let stripe = (rows / 4).max(1);
            let lo = (t * stripe) % rows;
            TxnSpec::new(vec![
                TxnOp::Read {
                    table: &table,
                    columns: &read_columns,
                    row: lo,
                },
                TxnOp::Update {
                    table: &table,
                    row: lo,
                    column: 1,
                    value: seed + t,
                },
                TxnOp::Update {
                    table: &table,
                    row: (lo + 1) % rows,
                    column: 2,
                    value: t,
                },
            ])
        })
        .collect();

    sys.begin_measurement(path);
    let mut traces: Traces = vec![Vec::new(); cores];
    let effect_of = |row: u64| RowEffect {
        cpu: SimTime::from_nanos(row % 5),
        touch: None,
    };
    let (end, cpu, rows_done, txn) = match runner {
        Runner::Scan => {
            let (end, cpu, n) = sys.scan(&scan_source, SimTime::ZERO, |row, vals| {
                traces[0].push((row, vals.to_vec()));
                effect_of(row)
            });
            (end, cpu, n, TxnStats::default())
        }
        Runner::Sharded(_) => {
            let run = sys.scan_sharded(&scan_source, SimTime::ZERO, |core, row, vals: &[u64]| {
                traces[core].push((row, vals.to_vec()));
                effect_of(row)
            });
            (run.end, run.cpu, run.rows, TxnStats::default())
        }
        Runner::Workload(n) => {
            let streams: Vec<QueryStream> = (0..n)
                .map(|_| QueryStream::new(vec![WorkloadOp::olap(scan_source)]))
                .collect();
            let run = sys
                .run_workload(
                    &Workload::new(streams),
                    SimTime::ZERO,
                    |core, _, row, vals| {
                        traces[core].push((row, vals.to_vec()));
                        effect_of(row)
                    },
                )
                .expect("valid workload");
            (run.end, run.cpu, run.rows, run.txn)
        }
        Runner::Txn => {
            let txn_ops: Vec<WorkloadOp> =
                specs.iter().map(|spec| WorkloadOp::Txn { spec }).collect();
            let workload = Workload::new(vec![
                QueryStream::new(txn_ops),
                QueryStream::new(vec![WorkloadOp::olap(scan_source)]),
            ]);
            let run = sys
                .run_workload(&workload, SimTime::ZERO, |core, _, row, vals| {
                    traces[core].push((row, vals.to_vec()));
                    effect_of(row)
                })
                .expect("valid workload");
            assert_eq!(run.txn.committed, 4, "disjoint stripes never conflict");
            (run.end, run.cpu, run.rows, run.txn)
        }
    };
    let m = sys.finish_measurement(end, cpu, path);
    RunRecord {
        end,
        cpu,
        rows: rows_done,
        traces,
        cache: m.cache,
        dram: m.dram,
        rme: m.rme,
        txn,
    }
}

fn runners_for(source: Source) -> Vec<Runner> {
    // The Txn runner pairs transactions (CPU traffic) with a concurrent
    // scan of `source`. Over an ephemeral source that is a *mixed*-class
    // run — and a non-snapshot scan racing the updates may legitimately
    // observe different row versions once timing shifts — so Txn stays on
    // CPU sources here; the mixed invariants live in
    // `mixed_rme_and_cpu_runs_keep_data_and_traffic`.
    match source {
        Source::RowsMvcc => vec![Runner::Scan, Runner::Workload(1), Runner::Txn],
        Source::EphemeralCold | Source::EphemeralHot => vec![
            Runner::Scan,
            Runner::Sharded(2),
            Runner::Sharded(4),
            Runner::Workload(2),
        ],
        _ => vec![
            Runner::Scan,
            Runner::Sharded(2),
            Runner::Sharded(4),
            Runner::Workload(2),
            Runner::Txn,
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Occupancy model, single-source runs: the event-driven path must be
    /// *bit-identical* to the synchronous path — completion time, CPU
    /// time, per-stream traces and every cache/DRAM/RME counter — across
    /// scan / sharded / workload / txn over Rows, Columnar and Ephemeral
    /// sources, with and without MVCC. Each run's DRAM traffic comes from
    /// one admission class, and either class alone is FIFO.
    #[test]
    fn event_driven_is_bit_identical_on_single_source_runs(
        seed in 0u64..1_000,
        rows in 16u64..ROWS_CAP,
    ) {
        for source in ALL_SOURCES {
            for runner in runners_for(source) {
                let sync = run_case(runner, source, MemoryModel::Occupancy, false, seed, rows);
                let evt = run_case(runner, source, MemoryModel::Occupancy, true, seed, rows);
                prop_assert_eq!(&sync, &evt, "diverged for {:?}/{:?}", runner, source);
            }
        }
    }

    /// Occupancy model, mixed RME + CPU workload (point traffic on core 0,
    /// ephemeral scans beside it): demand priority legitimately shifts
    /// timing, but everything data-determined must survive — per-stream
    /// traces, row counts, engine fetch counts, writes, chunk totals and
    /// transaction accounting.
    #[test]
    fn mixed_rme_and_cpu_runs_keep_data_and_traffic(
        seed in 0u64..1_000,
        rows in 64u64..ROWS_CAP,
        oltp_ops in 8u64..40,
    ) {
        let run = |event: bool| {
            let mut sys = build_system(3, MemoryModel::Occupancy, event);
            let schema = Schema::benchmark(4, 4, 64);
            let mut table = sys.create_table(schema, rows, MvccConfig::Disabled).unwrap();
            DataGen::new(seed).fill_table(sys.mem_mut(), &mut table, rows).unwrap();
            let var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
                .unwrap();
            let oltp_columns = [1usize, 2];
            let oltp: Vec<WorkloadOp> = (0..oltp_ops)
                .map(|i| {
                    let row = i.wrapping_mul(2654435761) % rows;
                    if i % 5 == 4 {
                        WorkloadOp::PointUpdate { table: &table, row, column: 1, value: i }
                    } else {
                        WorkloadOp::PointLookup { table: &table, columns: &oltp_columns, row }
                    }
                })
                .collect();
            let workload = Workload::new(vec![
                QueryStream::new(oltp),
                QueryStream::new(vec![WorkloadOp::olap(ScanSource::Ephemeral { var: &var })]),
                QueryStream::new(vec![WorkloadOp::olap(ScanSource::Ephemeral { var: &var })]),
            ]);
            sys.begin_measurement(AccessPath::RmeCold);
            let mut traces: Traces = vec![Vec::new(); 3];
            let run = sys
                .run_workload(&workload, SimTime::ZERO, |core, _, row, vals| {
                    traces[core].push((row, vals.to_vec()));
                    RowEffect::default()
                })
                .expect("valid workload");
            let m = sys.finish_measurement(run.end, run.cpu, AccessPath::RmeCold);
            RunRecord {
                end: run.end,
                cpu: run.cpu,
                rows: run.rows,
                traces,
                cache: m.cache,
                dram: m.dram,
                rme: m.rme,
                txn: run.txn,
            }
        };
        let sync = run(false);
        let evt = run(true);
        prop_assert_eq!(sync.data_view(), evt.data_view());
        prop_assert_eq!(&sync.rme, &evt.rme, "engine counters are data-determined");
    }

    /// Cycle-accurate model: event mode may reorder commands (FR-FCFS
    /// write buffering) and emit writeback traffic, so timing and
    /// command-level counters may shift — but values, row counts and
    /// traffic totals must match the synchronous cycle-accurate run.
    #[test]
    fn cycle_accurate_event_divergence_is_timing_only(
        seed in 0u64..1_000,
        rows in 16u64..ROWS_CAP,
    ) {
        for source in ALL_SOURCES {
            let runners = match source {
                // Same racy-scan exclusion as `runners_for`: a non-snapshot
                // ephemeral scan racing transactional updates may observe
                // different row versions once timing shifts.
                Source::EphemeralCold | Source::EphemeralHot => {
                    vec![Runner::Scan, Runner::Workload(2)]
                }
                Source::RowsMvcc => vec![Runner::Scan, Runner::Txn],
                _ => vec![Runner::Scan, Runner::Workload(2), Runner::Txn],
            };
            for runner in runners {
                let sync = run_case(runner, source, MemoryModel::CycleAccurate, false, seed, rows);
                let evt = run_case(runner, source, MemoryModel::CycleAccurate, true, seed, rows);
                prop_assert_eq!(
                    &sync.traces, &evt.traces,
                    "data diverged for {:?}/{:?}", runner, source
                );
                prop_assert_eq!(sync.rows, evt.rows);
                prop_assert_eq!(&sync.txn, &evt.txn);
                prop_assert_eq!(sync.dram.rme_accesses, evt.dram.rme_accesses);
                // Event mode adds asynchronous writeback writes on top of
                // the synchronous path's explicit (commit) writes — the
                // writeback counter accounts for exactly the difference.
                prop_assert_eq!(
                    sync.dram.writes + evt.dram.writebacks,
                    evt.dram.writes,
                    "CA event writes = sync writes + writebacks for {:?}/{:?}",
                    runner,
                    source
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Writeback timing: dirty evictions become real DRAM writes only where
// tWR/tWTR exist to observe them.
// ---------------------------------------------------------------------------

/// An update-heavy workload sized to overflow the L2, so dirty lines are
/// evicted while the stream is still running. Returns `(end, DramStats)`.
fn run_update_heavy(model: MemoryModel, event: bool) -> (SimTime, DramStats) {
    // Touch more distinct lines than the L2 holds, so dirty lines are
    // evicted while the stream is still running.
    let rows: u64 = 40_000;
    let mut sys = build_system(1, model, event);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .unwrap();
    DataGen::new(3)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .unwrap();
    let columns = [1usize];
    let ops: Vec<WorkloadOp> = (0..40_000u64)
        .map(|i| {
            let row = i.wrapping_mul(2654435761) % rows;
            if i % 2 == 0 {
                WorkloadOp::PointUpdate {
                    table: &table,
                    row,
                    column: 1,
                    value: i,
                }
            } else {
                WorkloadOp::PointLookup {
                    table: &table,
                    columns: &columns,
                    row,
                }
            }
        })
        .collect();
    let workload = Workload::new(vec![QueryStream::new(ops)]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    (run.end, sys.dram_stats().clone())
}

/// Under the cycle-accurate model in event mode, the dirty-eviction-heavy
/// update stream must produce real DRAM write traffic (writes and
/// writebacks both nonzero) and that traffic must cost time: tWR/tWTR
/// turnaround penalties push the makespan past the synchronous
/// cycle-accurate run, which never sees the writebacks.
#[test]
fn ca_event_mode_charges_writeback_traffic() {
    let (sync_end, sync_stats) = run_update_heavy(MemoryModel::CycleAccurate, false);
    let (evt_end, evt_stats) = run_update_heavy(MemoryModel::CycleAccurate, true);
    assert_eq!(
        sync_stats.writebacks, 0,
        "the synchronous path never emits writebacks"
    );
    assert!(
        evt_stats.writebacks > 0,
        "dirty evictions must surface as writebacks: {evt_stats:?}"
    );
    assert_eq!(evt_stats.writes, sync_stats.writes + evt_stats.writebacks);
    assert!(
        evt_end > sync_end,
        "writeback traffic must cost tWR/tWTR time: sync {sync_end:?}, event {evt_end:?}"
    );
}

/// The same stream under the occupancy model: writebacks stay gated off in
/// both modes and the runs are bit-identical — the behavioural change is
/// confined to the cycle-accurate event path.
#[test]
fn occupancy_update_stream_is_unchanged_by_event_mode() {
    let (sync_end, sync_stats) = run_update_heavy(MemoryModel::Occupancy, false);
    let (evt_end, evt_stats) = run_update_heavy(MemoryModel::Occupancy, true);
    assert_eq!(sync_stats.writebacks, 0);
    assert_eq!(evt_stats.writebacks, 0, "occupancy never emits writebacks");
    assert_eq!(sync_stats, evt_stats);
    assert_eq!(sync_end, evt_end);
}
