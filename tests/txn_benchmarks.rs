//! Named transactional benchmarks gating the MVCC transaction layer.
//!
//! Each benchmark is a fixed, named scenario with its parameters as
//! constants at the top of its section, in three tiers of assertion:
//!
//! * **exact answers** — row counts, read-back values, final cell
//!   contents: these must never drift;
//! * **exact accounting** — commit/abort counters and the identity
//!   `begun == committed + aborted_conflict + aborted_shed`: conflicts are
//!   deterministic under the min-clock interleaver, so the counts are
//!   pinned as data;
//! * **budgets** — simulated-time and DRAM-access ceilings with ~2×
//!   headroom: a timing-model tune may move the numbers, a complexity
//!   regression (e.g. commits re-reading whole tables) blows the budget.
//!   The golden-trace suite pins the exact counters; budgets here catch
//!   order-of-magnitude mistakes with a readable failure.

use relational_memory::core::system::{RowEffect, ScanSource, SystemConfig};
use relational_memory::core::workload::{OpKind, QueryStream, Workload, WorkloadOp};
use relational_memory::core::{TxnOp, TxnSpec};
use relational_memory::prelude::*;
use relmem_sim::SimTime;

/// Builds a system with `cores` cores and a benchmark-schema table filled
/// with `rows` rows (allocated for `capacity` so transactions can append).
fn build(
    cores: usize,
    rows: u64,
    capacity: u64,
    mvcc: MvccConfig,
    model: relmem_sim::MemoryModel,
) -> (System, RowTable) {
    let mut config = SystemConfig {
        cores,
        mem_bytes: 16 << 20,
        ..SystemConfig::default()
    };
    config.platform.dram.model = model;
    let mut sys = System::with_config(config);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys.create_table(schema, capacity, mvcc).unwrap();
    DataGen::new(29)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .unwrap();
    (sys, table)
}

// ---------------------------------------------------------------------------
// transfer_hotrow_4core — write-write contention on one hot row
// ---------------------------------------------------------------------------

const TRANSFER_ROWS: u64 = 2_000;
const TRANSFER_CORES: usize = 4;
const TRANSFER_TXNS_PER_CORE: u64 = 8;
/// In-place retry budget per transaction — generous enough that every
/// transfer eventually commits despite the hot row (at 8 retries one
/// transaction still starves under the fixed 4-core interleaving).
const TRANSFER_RETRIES: u32 = 16;
/// Row every transaction transfers against.
const TRANSFER_HOT_ROW: u64 = 0;
/// Pinned conflict-abort count of the fixed 4-core interleaving.
const TRANSFER_CONFLICT_ABORTS: u64 = 37;
/// Simulated-time budget (ns) — ~2× the observed makespan.
const TRANSFER_END_BUDGET_NS: u64 = 40_000;
/// DRAM-access budget — ~2× the observed traffic.
const TRANSFER_DRAM_BUDGET: u64 = 700;

/// Four cores each run eight transfer transactions against one hot row:
/// read hot + read own, then update both. First-updater-wins aborts the
/// later claimer; with retries every transfer must eventually commit, and
/// the abort count of the fixed interleaving is pinned exactly.
#[test]
fn transfer_hotrow_4core() {
    let (mut sys, table) = build(
        TRANSFER_CORES,
        TRANSFER_ROWS,
        TRANSFER_ROWS,
        MvccConfig::Enabled,
        relmem_sim::MemoryModel::Occupancy,
    );
    let read_columns = [0usize, 1];
    let specs: Vec<Vec<TxnSpec>> = (0..TRANSFER_CORES)
        .map(|core| {
            (0..TRANSFER_TXNS_PER_CORE)
                .map(|i| {
                    let own = 100 + (core as u64) * 50 + i;
                    TxnSpec::new(vec![
                        TxnOp::Read {
                            table: &table,
                            columns: &read_columns,
                            row: TRANSFER_HOT_ROW,
                        },
                        TxnOp::Read {
                            table: &table,
                            columns: &read_columns,
                            row: own,
                        },
                        TxnOp::Update {
                            table: &table,
                            row: TRANSFER_HOT_ROW,
                            column: 0,
                            value: (core as u64) * 1_000 + i,
                        },
                        TxnOp::Update {
                            table: &table,
                            row: own,
                            column: 1,
                            value: i,
                        },
                    ])
                    .with_retries(TRANSFER_RETRIES)
                })
                .collect()
        })
        .collect();
    let workload = Workload::new(
        specs
            .iter()
            .map(|core_specs| {
                QueryStream::new(
                    core_specs
                        .iter()
                        .map(|spec| WorkloadOp::Txn { spec })
                        .collect(),
                )
            })
            .collect(),
    );
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");

    let expected_commits = TRANSFER_CORES as u64 * TRANSFER_TXNS_PER_CORE;
    assert!(run.txn.is_consistent(), "accounting identity: {:?}", run.txn);
    assert_eq!(
        run.txn.committed, expected_commits,
        "every transfer must eventually commit: {:?}",
        run.txn
    );
    assert_eq!(
        run.txn.aborted_conflict, TRANSFER_CONFLICT_ABORTS,
        "pinned conflict-abort count of the fixed interleaving: {:?}",
        run.txn
    );
    assert_eq!(run.txn.aborted_shed, 0);
    assert_eq!(
        run.txn.begun,
        expected_commits + TRANSFER_CONFLICT_ABORTS,
        "each retry counts as a fresh attempt"
    );
    assert_eq!(
        run.txn_aborts.len() as u64,
        TRANSFER_CONFLICT_ABORTS,
        "every abort is recorded as a victim"
    );
    assert!(
        run.txn_aborts.iter().all(|a| a.attempt < TRANSFER_RETRIES),
        "no transfer exhausted its retry budget"
    );
    assert!(
        run.end <= SimTime::from_nanos(TRANSFER_END_BUDGET_NS),
        "makespan {} exceeds the {TRANSFER_END_BUDGET_NS} ns budget",
        run.end
    );
    let dram = sys.dram_stats();
    assert!(
        dram.accesses <= TRANSFER_DRAM_BUDGET,
        "{} DRAM accesses exceed the {TRANSFER_DRAM_BUDGET} budget",
        dram.accesses
    );
}

// ---------------------------------------------------------------------------
// insert_append_stream — publication, capacity shedding and read-back
// ---------------------------------------------------------------------------

const INSERT_ROWS: u64 = 1_000;
/// Append headroom: exactly the rows the committing transactions publish.
const INSERT_HEADROOM: u64 = 24;
/// Committing insert transactions (2 rows each — fills the headroom).
const INSERT_TXNS: u64 = 12;
/// Extra transactions past capacity — every one must shed at commit.
const INSERT_OVERFLOW_TXNS: u64 = 2;
const INSERT_ROWS_PER_TXN: u64 = 2;
const INSERT_END_BUDGET_NS: u64 = 20_000;
const INSERT_DRAM_BUDGET: u64 = 400;

/// A single stream of insert transactions publishing into both the row
/// table and a columnar copy with matching headroom. The first twelve fill
/// the capacity exactly; two more must abort as shed, publishing nothing.
/// Published values are read back exactly from both representations.
#[test]
fn insert_append_stream() {
    let (mut sys, table) = build(
        1,
        INSERT_ROWS,
        INSERT_ROWS + INSERT_HEADROOM,
        MvccConfig::Disabled,
        relmem_sim::MemoryModel::Occupancy,
    );
    let columnar = relational_memory::storage::ColumnarTable::materialize_with_capacity(
        sys.mem_mut(),
        &table,
        INSERT_ROWS + INSERT_HEADROOM,
    )
    .unwrap();

    let total_txns = INSERT_TXNS + INSERT_OVERFLOW_TXNS;
    let value_rows: Vec<[u64; 5]> = (0..total_txns * INSERT_ROWS_PER_TXN)
        .map(|j| [j + 10, j + 20, j + 30, j + 40, 0])
        .collect();
    let specs: Vec<TxnSpec> = value_rows
        .chunks(INSERT_ROWS_PER_TXN as usize)
        .map(|chunk| {
            TxnSpec::new(
                chunk
                    .iter()
                    .map(|values| TxnOp::Insert {
                        table: &table,
                        columnar: Some(&columnar),
                        values,
                    })
                    .collect(),
            )
        })
        .collect();
    let workload = Workload::new(vec![QueryStream::new(
        specs.iter().map(|spec| WorkloadOp::Txn { spec }).collect(),
    )]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");

    assert!(run.txn.is_consistent(), "accounting identity: {:?}", run.txn);
    assert_eq!(run.txn.begun, total_txns);
    assert_eq!(run.txn.committed, INSERT_TXNS);
    assert_eq!(
        run.txn.aborted_shed, INSERT_OVERFLOW_TXNS,
        "capacity exhaustion sheds whole transactions: {:?}",
        run.txn
    );
    assert_eq!(run.txn.aborted_conflict, 0);
    assert_eq!(run.txn.rows_inserted, INSERT_TXNS * INSERT_ROWS_PER_TXN);
    assert_eq!(table.num_rows(), INSERT_ROWS + INSERT_HEADROOM);
    assert_eq!(columnar.num_rows(), INSERT_ROWS + INSERT_HEADROOM);
    assert_eq!(run.rows, INSERT_TXNS * INSERT_ROWS_PER_TXN);

    // The shed transactions are the last two outcomes, publishing nothing.
    let outcomes = &run.streams[0].ops;
    assert_eq!(outcomes.len() as u64, total_txns);
    for out in &outcomes[..INSERT_TXNS as usize] {
        assert_eq!(out.kind, OpKind::TxnCommit);
    }
    for out in &outcomes[INSERT_TXNS as usize..] {
        assert_eq!(out.kind, OpKind::TxnAbortShed);
        assert_eq!(out.rows, 0);
    }

    // Exact read-back of every published row, from both representations.
    for j in 0..INSERT_TXNS * INSERT_ROWS_PER_TXN {
        let row = INSERT_ROWS + j;
        for col in 0..4usize {
            let expect = j + 10 * (col as u64 + 1);
            assert_eq!(
                table.read_field(sys.mem(), row, col).unwrap().as_u64(),
                expect,
                "row table row {row} col {col}"
            );
            assert_eq!(
                columnar.read_field(sys.mem(), row, col).unwrap().as_u64(),
                expect,
                "columnar row {row} col {col}"
            );
        }
    }
    assert!(
        run.end <= SimTime::from_nanos(INSERT_END_BUDGET_NS),
        "makespan {} exceeds the {INSERT_END_BUDGET_NS} ns budget",
        run.end
    );
    let dram = sys.dram_stats();
    assert!(
        dram.accesses <= INSERT_DRAM_BUDGET,
        "{} DRAM accesses exceed the {INSERT_DRAM_BUDGET} budget",
        dram.accesses
    );
    assert!(
        dram.writes > 0,
        "published inserts must reach DRAM as explicit writes"
    );
}

// ---------------------------------------------------------------------------
// readonly_snapshot_txn — snapshot reads see a frozen world
// ---------------------------------------------------------------------------

const SNAPSHOT_ROWS: u64 = 1_000;
/// Rows the read-only transactions touch (rows `0..SNAPSHOT_READS`).
const SNAPSHOT_READS: u64 = 50;
/// Every 5th row is deleted at this timestamp before the run.
const SNAPSHOT_DELETE_TS: u64 = 5;
/// Reads under ts 3 run before the deletes: all rows visible.
const SNAPSHOT_EARLY_TS: u64 = 3;
/// Reads under ts 7 run after: every 5th row (10 of 50) is gone.
const SNAPSHOT_LATE_TS: u64 = 7;

/// Two read-only transactions over the same 50 rows, one with a snapshot
/// timestamp before a batch of deletes and one after. The answer row
/// counts are exact, and a read-only transaction issues no DRAM writes.
#[test]
fn readonly_snapshot_txn() {
    let (mut sys, table) = build(
        1,
        SNAPSHOT_ROWS,
        SNAPSHOT_ROWS,
        MvccConfig::Enabled,
        relmem_sim::MemoryModel::Occupancy,
    );
    for row in 0..SNAPSHOT_ROWS {
        if row % 5 == 0 {
            table
                .mark_deleted(sys.mem_mut(), row, SNAPSHOT_DELETE_TS)
                .unwrap();
        }
    }
    let read_columns = [1usize, 2];
    let reads: Vec<TxnOp> = (0..SNAPSHOT_READS)
        .map(|row| TxnOp::Read {
            table: &table,
            columns: &read_columns,
            row,
        })
        .collect();
    let early = TxnSpec::new(reads.clone()).with_read_ts(SNAPSHOT_EARLY_TS);
    let late = TxnSpec::new(reads).with_read_ts(SNAPSHOT_LATE_TS);
    let workload = Workload::new(vec![QueryStream::new(vec![
        WorkloadOp::Txn { spec: &early },
        WorkloadOp::Txn { spec: &late },
    ])]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");

    assert!(run.txn.is_consistent());
    assert_eq!(run.txn.begun, 2);
    assert_eq!(run.txn.committed, 2);
    assert_eq!(run.txn.aborted_conflict + run.txn.aborted_shed, 0);

    let outcomes = &run.streams[0].ops;
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].kind, OpKind::TxnCommit);
    assert_eq!(
        outcomes[0].rows, SNAPSHOT_READS,
        "under ts {SNAPSHOT_EARLY_TS} every row is still visible"
    );
    assert_eq!(outcomes[1].kind, OpKind::TxnCommit);
    assert_eq!(
        outcomes[1].rows,
        SNAPSHOT_READS - SNAPSHOT_READS / 5,
        "under ts {SNAPSHOT_LATE_TS} the deleted rows are invisible"
    );
    assert_eq!(
        sys.dram_stats().writes,
        0,
        "read-only transactions issue no commit stamps"
    );
}

// ---------------------------------------------------------------------------
// mixed_htap_txn — transactions beside an analytical scan
// ---------------------------------------------------------------------------

const MIXED_ROWS: u64 = 2_000;
const MIXED_HEADROOM: u64 = 8;
/// Read-modify-write transactions on core 0.
const MIXED_RMW_TXNS: u64 = 8;
/// Insert transactions (one published row each) on core 0.
const MIXED_INSERT_TXNS: u64 = 4;
/// Delete transactions (one row each) on core 0.
const MIXED_DELETE_TXNS: u64 = 2;
/// Rows the concurrent snapshot scan reports. Not the full 2 000: an MVCC
/// commit restamps an updated row's header to begin at the commit
/// timestamp (the one-version-per-slot approximation documented in
/// `relmem_core::txn`), so rows whose update committed before the scan
/// cursor reached them drop out of the pre-transaction snapshot. The
/// count is deterministic under the min-clock interleaver — pinned here
/// as data, like a golden fixture.
const MIXED_SCAN_ROWS: u64 = 1_993;
const MIXED_END_BUDGET_NS: u64 = 1_000_000;
const MIXED_DRAM_BUDGET: u64 = 6_000;

/// An HTAP mix: core 0 interleaves read-modify-write, insert and delete
/// transactions while core 1 scans one column under a pre-transaction
/// snapshot — the scan's answer count is pinned exactly (including the
/// restamp artifact, see [`MIXED_SCAN_ROWS`]), and every DRAM write is
/// accounted to a commit.
#[test]
fn mixed_htap_txn() {
    let (mut sys, table) = build(
        2,
        MIXED_ROWS,
        MIXED_ROWS + MIXED_HEADROOM,
        MvccConfig::Enabled,
        relmem_sim::MemoryModel::Occupancy,
    );
    let read_columns = [0usize, 3];
    let scan_columns = [0usize];

    let value_rows: Vec<[u64; 5]> = (0..MIXED_INSERT_TXNS)
        .map(|j| [j, j + 1, j + 2, j + 3, 0])
        .collect();
    let mut specs: Vec<TxnSpec> = Vec::new();
    for i in 0..MIXED_RMW_TXNS {
        let row = i.wrapping_mul(2654435761) % MIXED_ROWS;
        specs.push(TxnSpec::new(vec![
            TxnOp::Read {
                table: &table,
                columns: &read_columns,
                row,
            },
            TxnOp::Update {
                table: &table,
                row,
                column: 2,
                value: i,
            },
        ]));
    }
    for values in &value_rows {
        specs.push(TxnSpec::new(vec![TxnOp::Insert {
            table: &table,
            columnar: None,
            values,
        }]));
    }
    for i in 0..MIXED_DELETE_TXNS {
        specs.push(TxnSpec::new(vec![TxnOp::Delete {
            table: &table,
            row: 500 + i,
        }]));
    }
    let workload = Workload::new(vec![
        QueryStream::new(specs.iter().map(|spec| WorkloadOp::Txn { spec }).collect()),
        QueryStream::new(vec![WorkloadOp::OlapScan {
            source: ScanSource::Rows {
                table: &table,
                columns: &scan_columns,
                snapshot: Some(Snapshot::at(2)),
            },
            stream_snapshot: false,
        }]),
    ]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");

    let total_txns = MIXED_RMW_TXNS + MIXED_INSERT_TXNS + MIXED_DELETE_TXNS;
    assert!(run.txn.is_consistent(), "accounting identity: {:?}", run.txn);
    assert_eq!(run.txn.begun, total_txns);
    assert_eq!(
        run.txn.committed, total_txns,
        "a single transactional stream never conflicts: {:?}",
        run.txn
    );
    assert_eq!(run.txn.rows_inserted, MIXED_INSERT_TXNS);
    assert_eq!(
        run.streams[1].rows, MIXED_SCAN_ROWS,
        "the snapshot scan's answer is pinned (restamp artifact included)"
    );
    let dram = sys.dram_stats();
    // Every MVCC update, delete and published row stamps DRAM exactly once.
    assert_eq!(
        dram.writes,
        MIXED_RMW_TXNS + MIXED_INSERT_TXNS + MIXED_DELETE_TXNS,
        "one explicit DRAM write per committed intent"
    );
    assert!(
        run.end <= SimTime::from_nanos(MIXED_END_BUDGET_NS),
        "makespan {} exceeds the {MIXED_END_BUDGET_NS} ns budget",
        run.end
    );
    assert!(
        dram.accesses <= MIXED_DRAM_BUDGET,
        "{} DRAM accesses exceed the {MIXED_DRAM_BUDGET} budget",
        dram.accesses
    );
}

// ---------------------------------------------------------------------------
// Cycle-accurate commit write traffic
// ---------------------------------------------------------------------------

const CA_TXNS: u64 = 4;

/// Commit stamps are the only CPU-side traffic that reaches DRAM as
/// explicit writes; under the cycle-accurate model they must show up in
/// the write counter (exercising tWR/tWTR turnaround outside the DRAM
/// crate's own unit tests). One update plus one delete per transaction →
/// exactly two writes per commit.
#[test]
fn cycle_accurate_commit_write_traffic() {
    let (mut sys, table) = build(
        1,
        1_000,
        1_000,
        MvccConfig::Enabled,
        relmem_sim::MemoryModel::CycleAccurate,
    );
    assert_eq!(sys.memory_model(), relmem_sim::MemoryModel::CycleAccurate);
    let specs: Vec<TxnSpec> = (0..CA_TXNS)
        .map(|i| {
            TxnSpec::new(vec![
                TxnOp::Update {
                    table: &table,
                    row: i * 7,
                    column: 0,
                    value: i,
                },
                TxnOp::Delete {
                    table: &table,
                    row: 100 + i,
                },
            ])
        })
        .collect();
    let workload = Workload::new(vec![QueryStream::new(
        specs.iter().map(|spec| WorkloadOp::Txn { spec }).collect(),
    )]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    assert_eq!(run.txn.committed, CA_TXNS);
    let dram = sys.dram_stats();
    assert_eq!(
        dram.writes,
        2 * CA_TXNS,
        "one explicit DRAM write per update stamp and per delete stamp"
    );
    assert!(
        dram.writes > 0,
        "commit stamps must reach the cycle-accurate controller as writes"
    );
}
