//! The per-core workload-stream subsystem: edge cases, determinism, MVCC
//! snapshots taken mid-stream, and the HTAP isolation claim — OLTP tail
//! latency under concurrent analytical scans degrades less when the scans
//! go through the RME than when they read the rows directly.

use relational_memory::core::system::{RowEffect, ScanSource, SystemConfig};
use relational_memory::core::workload::{OpKind, QueryStream, Workload, WorkloadError, WorkloadOp};
use relational_memory::prelude::*;
use relmem_sim::SimTime;

fn build(cores: usize, rows: u64, mvcc: MvccConfig) -> (System, RowTable) {
    let mut cfg = SystemConfig {
        cores,
        ..SystemConfig::default()
    };
    cfg.mem_bytes = ((rows * 96) as usize + (16 << 20)).next_power_of_two();
    let mut sys = System::with_config(cfg);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys.create_table(schema, rows + 16, mvcc).unwrap();
    DataGen::new(7)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .unwrap();
    (sys, table)
}

#[test]
fn zero_query_streams_complete_instantly() {
    let (mut sys, _table) = build(4, 100, MvccConfig::Disabled);
    let workload = Workload::new(vec![
        QueryStream::empty(),
        QueryStream::empty(),
        QueryStream::empty(),
        QueryStream::empty(),
    ]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| {
            panic!("no op should produce a row")
        })
        .expect("empty workload is valid");
    assert_eq!(run.end, SimTime::ZERO);
    assert_eq!(run.rows, 0);
    assert_eq!(run.streams.len(), 4);
    assert!(run.streams.iter().all(|s| s.ops.is_empty()));
}

#[test]
fn cores_with_empty_streams_stay_idle_while_others_work() {
    let rows = 2_000;
    let (mut sys, table) = build(4, rows, MvccConfig::Disabled);
    let columns = [0usize, 1];
    // Only core 2 works; cores 0, 1 have empty streams; core 3 has no
    // stream at all (workload shorter than the core count).
    let workload = Workload::new(vec![
        QueryStream::empty(),
        QueryStream::empty(),
        QueryStream::new(vec![WorkloadOp::olap(ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        })]),
    ]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |core, _, _, _| {
            assert_eq!(core, 2, "only core 2 has work");
            RowEffect::default()
        })
        .expect("valid workload");
    assert_eq!(run.rows, rows);
    assert_eq!(run.streams.len(), 3);
    assert_eq!(run.streams[2].ops[0].rows, rows);
    assert!(run.streams[0].end.is_zero() && run.streams[1].end.is_zero());
    assert!(run.end > SimTime::ZERO);
    // Idle cores issued no cache requests.
    assert_eq!(sys.core_stats(0).l1.requests, 0);
    assert_eq!(sys.core_stats(1).l1.requests, 0);
    assert!(sys.core_stats(2).l1.requests > 0);
}

#[test]
fn more_streams_than_cores_is_rejected() {
    let (mut sys, _table) = build(1, 10, MvccConfig::Disabled);
    let workload = Workload::new(vec![QueryStream::empty(), QueryStream::empty()]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let err = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .unwrap_err();
    assert_eq!(
        err,
        WorkloadError::TooManyStreams {
            streams: 2,
            cores: 1
        }
    );
    assert_eq!(
        err.to_string(),
        "workload has 2 streams but the system only has 1 cores"
    );
}

#[test]
fn mvcc_snapshot_taken_mid_stream_governs_later_ops() {
    let rows = 200;
    let (mut sys, table) = build(1, rows, MvccConfig::Enabled);
    let columns = [0usize];
    // The stream deletes row 7 at ts 5, then scans under a snapshot taken
    // *before* the delete (sees every row) and one taken *after* (sees one
    // row fewer). Point lookups of row 7 flip visibility the same way.
    let workload = Workload::new(vec![QueryStream::new(vec![
        WorkloadOp::PointDelete {
            table: &table,
            row: 7,
            ts: 5,
        },
        WorkloadOp::TakeSnapshot { ts: 4 },
        WorkloadOp::OlapScan {
            source: ScanSource::Rows {
                table: &table,
                columns: &columns,
                snapshot: None,
            },
            stream_snapshot: true,
        },
        WorkloadOp::PointLookup {
            table: &table,
            columns: &columns,
            row: 7,
        },
        WorkloadOp::TakeSnapshot { ts: 6 },
        WorkloadOp::OlapScan {
            source: ScanSource::Rows {
                table: &table,
                columns: &columns,
                snapshot: None,
            },
            stream_snapshot: true,
        },
        WorkloadOp::PointLookup {
            table: &table,
            columns: &columns,
            row: 7,
        },
    ])]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    let ops = &run.streams[0].ops;
    assert_eq!(ops[2].rows, rows, "pre-delete snapshot sees every row");
    assert_eq!(ops[3].rows, 1, "row 7 is visible at ts 4");
    assert_eq!(ops[5].rows, rows - 1, "post-delete snapshot misses row 7");
    assert_eq!(ops[6].rows, 0, "row 7 is invisible at ts 6");
}

#[test]
fn point_updates_are_visible_to_later_readers() {
    let (mut sys, table) = build(1, 50, MvccConfig::Disabled);
    let columns = [1usize];
    let workload = Workload::new(vec![QueryStream::new(vec![
        WorkloadOp::PointUpdate {
            table: &table,
            row: 3,
            column: 1,
            value: 0xAB,
        },
        WorkloadOp::PointLookup {
            table: &table,
            columns: &columns,
            row: 3,
        },
    ])]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let mut seen = Vec::new();
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, op, _, values| {
            seen.push((op, values[0]));
            RowEffect::default()
        })
        .expect("valid workload");
    assert_eq!(seen, vec![(0, 0xAB), (1, 0xAB)]);
    assert_eq!(run.streams[0].ops[0].kind, OpKind::PointUpdate);
    assert!(run.streams[0].ops[1].latency() > SimTime::ZERO);
}

#[test]
fn workload_runs_are_deterministic() {
    let run_once = || {
        let rows = 4_000;
        let (mut sys, table) = build(2, rows, MvccConfig::Disabled);
        let columns = [0usize, 2];
        let oltp: Vec<WorkloadOp> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    WorkloadOp::PointUpdate {
                        table: &table,
                        row: (i * 37) % rows,
                        column: 0,
                        value: i,
                    }
                } else {
                    WorkloadOp::PointLookup {
                        table: &table,
                        columns: &columns,
                        row: (i * 17) % rows,
                    }
                }
            })
            .collect();
        let workload = Workload::new(vec![
            QueryStream::new(oltp),
            QueryStream::new(vec![WorkloadOp::olap(ScanSource::Rows {
                table: &table,
                columns: &columns,
                snapshot: None,
            })]),
        ]);
        sys.begin_measurement(AccessPath::DirectRowWise);
        let mut checksum = 0u64;
        let run = sys
            .run_workload(&workload, SimTime::ZERO, |_, _, _, values| {
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
                RowEffect::default()
            })
            .expect("valid workload");
        let latencies: Vec<SimTime> = run.streams[0].ops.iter().map(|o| o.latency()).collect();
        (run.end, run.cpu, checksum, latencies)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "identical workloads must replay bit-identically");
}

#[test]
fn concurrent_streams_contend_on_the_shared_l2() {
    let rows = 20_000;
    let (mut sys, table) = build(2, rows, MvccConfig::Disabled);
    let columns = [0usize, 1, 2, 3];
    let src = ScanSource::Rows {
        table: &table,
        columns: &columns,
        snapshot: None,
    };
    let workload = Workload::new(vec![
        QueryStream::new(vec![WorkloadOp::olap(src)]),
        QueryStream::new(vec![WorkloadOp::olap(src)]),
    ]);
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
        .expect("valid workload");
    assert_eq!(run.rows, 2 * rows);
    // Both streams see shared-L2 contention, and the per-core L2 shares
    // attribute the traffic stream by stream.
    assert!(run
        .streams
        .iter()
        .any(|s| !s.cache.l2_contention_delay.is_zero()));
    let shares = sys.l2_shares().to_vec();
    assert!(shares[0].lookups > 0 && shares[1].lookups > 0);
    let total: u64 = shares.iter().map(|s| s.lookups).sum();
    assert_eq!(total, sys.l2_stats().lookups);
}

/// The paper's HTAP isolation story, as a regression gate: run an OLTP
/// point-query stream on core 0 while the other cores run analytical
/// scans, once with the scans reading the row table directly and once
/// through the RME. The OLTP p99 must degrade less (vs. an interference-
/// free baseline) when the analytics go through the engine.
#[test]
fn rme_scans_disturb_oltp_tail_latency_less_than_direct_scans() {
    let rows: u64 = 30_000;
    let oltp_ops = 400usize;
    let scan_columns = [0usize];
    let oltp_columns = [1usize, 2];

    // (is_update, row) pairs, generated deterministically.
    let oltp_stream = |table: &RowTable| -> Vec<(bool, u64)> {
        (0..oltp_ops as u64)
            .map(|i| {
                (
                    (i % 5 == 4),
                    (i.wrapping_mul(2654435761)) % table.num_rows(),
                )
            })
            .collect()
    };

    // p99 with no analytical interference (single stream on 1 core).
    let baseline_p99 = {
        let (mut sys, table) = build(1, rows, MvccConfig::Disabled);
        let ops: Vec<WorkloadOp> = oltp_stream(&table)
            .into_iter()
            .map(|(upd, row)| {
                if upd {
                    WorkloadOp::PointUpdate {
                        table: &table,
                        row,
                        column: 1,
                        value: row,
                    }
                } else {
                    WorkloadOp::PointLookup {
                        table: &table,
                        columns: &oltp_columns,
                        row,
                    }
                }
            })
            .collect();
        let workload = Workload::new(vec![QueryStream::new(ops)]);
        sys.begin_measurement(AccessPath::DirectRowWise);
        let run = sys
            .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
            .expect("valid workload");
        run.oltp_latencies().p99()
    };

    // p99 with three concurrent analytical streams, direct vs. RME.
    let contended_p99 = |through_rme: bool| {
        let (mut sys, table) = build(4, rows, MvccConfig::Disabled);
        let var;
        let scan_source = if through_rme {
            var = sys
                .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
                .unwrap();
            ScanSource::Ephemeral { var: &var }
        } else {
            ScanSource::Rows {
                table: &table,
                columns: &scan_columns,
                snapshot: None,
            }
        };
        let ops: Vec<WorkloadOp> = oltp_stream(&table)
            .into_iter()
            .map(|(upd, row)| {
                if upd {
                    WorkloadOp::PointUpdate {
                        table: &table,
                        row,
                        column: 1,
                        value: row,
                    }
                } else {
                    WorkloadOp::PointLookup {
                        table: &table,
                        columns: &oltp_columns,
                        row,
                    }
                }
            })
            .collect();
        let workload = Workload::new(vec![
            QueryStream::new(ops),
            QueryStream::new(vec![WorkloadOp::olap(scan_source)]),
            QueryStream::new(vec![WorkloadOp::olap(scan_source)]),
            QueryStream::new(vec![WorkloadOp::olap(scan_source)]),
        ]);
        sys.begin_measurement(if through_rme {
            AccessPath::RmeCold
        } else {
            AccessPath::DirectRowWise
        });
        let run = sys
            .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
            .expect("valid workload");
        assert_eq!(run.olap_rows(), 3 * rows);
        run.oltp_latencies().p99()
    };

    let direct = contended_p99(false);
    let rme = contended_p99(true);
    assert!(baseline_p99 > SimTime::ZERO);
    let direct_deg = direct.as_nanos_f64() / baseline_p99.as_nanos_f64();
    let rme_deg = rme.as_nanos_f64() / baseline_p99.as_nanos_f64();
    assert!(
        rme_deg < direct_deg,
        "OLTP p99 should degrade less under RME scans: \
         baseline {baseline_p99}, direct {direct} ({direct_deg:.2}x), \
         RME {rme} ({rme_deg:.2}x)"
    );
}

// ---------------------------------------------------------------------------
// Invalid workloads are rejected with typed errors before any work runs.
// ---------------------------------------------------------------------------

#[test]
fn invalid_closed_loop_ops_are_rejected_before_any_work_runs() {
    let (mut sys, table) = build(1, 100, MvccConfig::Disabled);
    let rows = table.num_rows();
    let cols = [0usize];
    let bad_cols = [7usize];
    let mut run = |ops: Vec<WorkloadOp>| {
        sys.run_workload(
            &Workload::new(vec![QueryStream::new(ops)]),
            SimTime::ZERO,
            |_, _, _, _| panic!("rejected workloads must not execute"),
        )
        .unwrap_err()
    };
    assert_eq!(
        run(vec![WorkloadOp::PointLookup {
            table: &table,
            columns: &cols,
            row: rows,
        }]),
        WorkloadError::RowOutOfRange {
            stream: 0,
            op: 0,
            row: rows,
            rows,
        }
    );
    // Schema::benchmark(4, 4, 64) has 4 UInt columns plus one Bytes fill
    // column: 5 in total, and only the first 4 are updatable.
    assert_eq!(
        run(vec![WorkloadOp::olap(ScanSource::Rows {
            table: &table,
            columns: &bad_cols,
            snapshot: None,
        })]),
        WorkloadError::ColumnOutOfRange {
            stream: 0,
            op: 0,
            column: 7,
            columns: 5,
        }
    );
    assert_eq!(
        run(vec![WorkloadOp::PointUpdate {
            table: &table,
            row: 0,
            column: 4,
            value: 1,
        }]),
        WorkloadError::NonUIntUpdate {
            stream: 0,
            op: 0,
            column: 4,
        }
    );
    assert_eq!(
        run(vec![WorkloadOp::PointDelete {
            table: &table,
            row: 0,
            ts: 1,
        }]),
        WorkloadError::MvccRequired { stream: 0, op: 0 }
    );
    // The error comes from the offending op, not the first one.
    assert_eq!(
        run(vec![
            WorkloadOp::PointLookup {
                table: &table,
                columns: &cols,
                row: 0,
            },
            WorkloadOp::PointLookup {
                table: &table,
                columns: &cols,
                row: rows + 5,
            },
        ]),
        WorkloadError::RowOutOfRange {
            stream: 0,
            op: 1,
            row: rows + 5,
            rows,
        }
    );
}

#[test]
fn invalid_open_loop_config_is_rejected() {
    let (mut sys, table) = build(1, 100, MvccConfig::Disabled);
    let cols = [0usize];
    let lookup = OpenLoopOp::new(WorkloadOp::PointLookup {
        table: &table,
        columns: &cols,
        row: 0,
    });
    let mut run = |wl: &OpenLoopWorkload, cfg: &AdmissionConfig| {
        sys.run_open_loop(wl, cfg, SimTime::ZERO, |_, _, _, _| {
            panic!("rejected workloads must not execute")
        })
        .unwrap_err()
    };
    let cfg = AdmissionConfig::default();
    assert_eq!(
        run(
            &OpenLoopWorkload::new(vec![
                OpenLoopStream::new(vec![lookup], 100.0, 1),
                OpenLoopStream::new(vec![lookup], 100.0, 1),
            ]),
            &cfg,
        ),
        WorkloadError::TooManyStreams {
            streams: 2,
            cores: 1
        }
    );
    for bad_rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert_eq!(
            run(
                &OpenLoopWorkload::new(vec![OpenLoopStream::new(vec![lookup], bad_rate, 1)]),
                &cfg,
            ),
            WorkloadError::InvalidArrivalRate { stream: 0 }
        );
    }
    assert_eq!(
        run(
            &OpenLoopWorkload::new(vec![OpenLoopStream::new(Vec::new(), 100.0, 1)]),
            &cfg,
        ),
        WorkloadError::EmptyTemplate { stream: 0 }
    );
    let valid = OpenLoopWorkload::new(vec![OpenLoopStream::new(vec![lookup], 100.0, 1)]);
    assert_eq!(
        run(
            &valid,
            &AdmissionConfig {
                queue_capacity: 0,
                ..cfg
            },
        ),
        WorkloadError::ZeroQueueCapacity
    );
    assert_eq!(
        run(
            &valid,
            &AdmissionConfig {
                degrade: Some(DegradePolicy {
                    high_watermark: 2,
                    low_watermark: 5,
                    trigger_after: 1,
                    clear_after: 1,
                }),
                ..cfg
            },
        ),
        WorkloadError::InvalidWatermarks { high: 2, low: 5 }
    );
    // Validation covers the degraded alternative, not just the normal op.
    let rows = table.num_rows();
    assert_eq!(
        run(
            &OpenLoopWorkload::new(vec![OpenLoopStream::new(
                vec![OpenLoopOp::with_degraded(
                    lookup.op,
                    WorkloadOp::PointLookup {
                        table: &table,
                        columns: &cols,
                        row: rows,
                    },
                )],
                100.0,
                1,
            )]),
            &cfg,
        ),
        WorkloadError::RowOutOfRange {
            stream: 0,
            op: 0,
            row: rows,
            rows,
        }
    );
}

// ---------------------------------------------------------------------------
// Open-loop traffic: admission control, shedding, timeout/retry and
// graceful degradation under overload.
// ---------------------------------------------------------------------------

/// Runs the open-loop HTAP mix with OLTP arrivals at `factor` times the
/// calibrated contended closed-loop service rate. Mirrors the harness's
/// `fig_htap_openloop` scenario: point queries on core 0, quasi-continuous
/// direct scans with RME degraded alternatives on cores 1–3. Returns the
/// run and the configured queueing-delay budget.
fn open_loop_htap_at(factor: f64) -> (OpenLoopRun, SimTime) {
    let rows: u64 = 10_000;
    let scan_columns = [0usize];
    const OLTP_COLUMNS: [usize; 2] = [1, 2];
    fn oltp_op(table: &RowTable, i: u64) -> WorkloadOp<'_> {
        let row = i.wrapping_mul(2654435761) % table.num_rows();
        if i % 5 == 4 {
            WorkloadOp::PointUpdate {
                table,
                row,
                column: 1,
                value: i,
            }
        } else {
            WorkloadOp::PointLookup {
                table,
                columns: &OLTP_COLUMNS,
                row,
            }
        }
    }

    // Calibrate from a contended closed-loop run: mean OLTP service time
    // (whose inverse is the 1.0x arrival rate) and one full scan's length.
    let (mean_ns, scan_dur) = {
        let (mut sys, table) = build(4, rows, MvccConfig::Disabled);
        let src = ScanSource::Rows {
            table: &table,
            columns: &scan_columns,
            snapshot: None,
        };
        let ops: Vec<WorkloadOp> = (0..400).map(|i| oltp_op(&table, i)).collect();
        let workload = Workload::new(vec![
            QueryStream::new(ops),
            QueryStream::new(vec![WorkloadOp::olap(src)]),
            QueryStream::new(vec![WorkloadOp::olap(src)]),
            QueryStream::new(vec![WorkloadOp::olap(src)]),
        ]);
        sys.begin_measurement(AccessPath::DirectRowWise);
        let run = sys
            .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
            .expect("valid workload");
        (
            run.oltp_latencies().mean_nanos().max(1.0),
            run.streams[1].ops[0].latency().max(SimTime::from_nanos(1)),
        )
    };

    let (mut sys, table) = build(4, rows, MvccConfig::Disabled);
    let var = sys
        .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
        .unwrap();
    let oltp_template: Vec<OpenLoopOp> =
        (0..100).map(|i| OpenLoopOp::new(oltp_op(&table, i))).collect();
    let scan_template = vec![OpenLoopOp::with_degraded(
        WorkloadOp::olap(ScanSource::Rows {
            table: &table,
            columns: &scan_columns,
            snapshot: None,
        }),
        WorkloadOp::olap(ScanSource::Ephemeral { var: &var }),
    )];
    let mut streams = vec![OpenLoopStream::new(
        oltp_template,
        1e9 / mean_ns * factor,
        400,
    )];
    for _ in 1..4 {
        streams.push(OpenLoopStream::new(
            scan_template.clone(),
            1e9 / (1.5 * scan_dur.as_nanos_f64()),
            6,
        ));
    }
    let budget = scan_dur.scaled(8);
    let cfg = AdmissionConfig {
        seed: 42,
        queue_capacity: 32,
        delay_budget: Some(budget),
        timeout: Some(scan_dur.scaled(16)),
        max_retries: 2,
        retry_backoff: SimTime::from_nanos(mean_ns as u64 + 1),
        degrade: Some(DegradePolicy {
            high_watermark: 24,
            low_watermark: 4,
            trigger_after: 8,
            clear_after: 16,
        }),
    };
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys
        .run_open_loop(
            &OpenLoopWorkload::new(streams),
            &cfg,
            SimTime::ZERO,
            |_, _, _, _| RowEffect::default(),
        )
        .expect("valid open-loop workload");
    (run, budget)
}

fn assert_conservation(o: &relmem_sim::OverloadStats) {
    assert_eq!(
        o.arrivals + o.retries,
        o.admitted + o.shed_queue_full,
        "every presented attempt is either admitted or rejected"
    );
    assert_eq!(
        o.admitted,
        o.completed + o.shed_deadline + o.timed_out,
        "every admitted attempt completes, sheds on deadline or times out"
    );
}

/// The PR's robustness gate: well below the saturation knee the admission
/// machinery is invisible (nothing shed, nothing timed out, no mode
/// switches); past the knee the bounded queue sheds, sustained pressure
/// downgrades the concurrent scans to the RME path, and the ops that *are*
/// admitted keep a tail within the configured queueing-delay budget.
#[test]
fn open_loop_saturation_knee_sheds_and_degrades_gracefully() {
    let (calm, _) = open_loop_htap_at(0.2);
    let o = &calm.overload;
    assert_eq!(o.shed(), 0, "no sheds well below the knee: {o:?}");
    assert_eq!(o.timed_out, 0, "no timeouts well below the knee");
    assert_eq!(o.retries, 0, "nothing to retry below the knee");
    assert!(
        o.transitions.is_empty(),
        "no degradation below the knee: {:?}",
        o.transitions
    );
    assert_conservation(o);

    let (hot, budget) = open_loop_htap_at(4.0);
    let o = &hot.overload;
    assert!(
        o.shed_queue_full > 0,
        "the bounded queue must reject past the knee: {o:?}"
    );
    assert!(
        o.degraded_ops > 0,
        "sustained pressure must downgrade scans to the RME path: {o:?}"
    );
    assert!(
        !o.transitions.is_empty() && o.transitions[0].degraded,
        "the first recorded transition enters degraded mode: {:?}",
        o.transitions
    );
    assert_conservation(o);

    // Graceful degradation: load shedding keeps the admitted ops' queueing
    // delay inside the budget by construction, and the admitted OLTP tail
    // stays within that budget end to end.
    let mut queue = hot.queue_delays();
    assert!(
        queue.max() <= budget,
        "started ops never waited past the budget: {} > {budget}",
        queue.max()
    );
    let mut lat = hot.oltp_latencies();
    assert!(
        lat.p99() <= budget,
        "admitted OLTP p99 {} must stay within the {budget} budget",
        lat.p99()
    );
}

/// Identical seeds and configuration replay bit-identically: the overload
/// accounting, every latency sample and the drain time all match.
#[test]
fn open_loop_runs_are_deterministic() {
    let (a, _) = open_loop_htap_at(4.0);
    let (b, _) = open_loop_htap_at(4.0);
    assert_eq!(a.overload, b.overload);
    assert_eq!(a.end, b.end);
    assert_eq!(a.cpu, b.cpu);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.latencies().samples(), b.latencies().samples());
    assert_eq!(a.queue_delays().samples(), b.queue_delays().samples());
}
