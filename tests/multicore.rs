//! Multi-core sharded scans: scaling, determinism, shared-L2 contention
//! visibility and sharding edge cases.

use relational_memory::core::system::{RowEffect, ScanSource, SystemConfig};
use relational_memory::prelude::*;
use relmem_sim::SimTime;

fn build(cores: usize, rows: u64) -> (System, RowTable) {
    let mut cfg = SystemConfig {
        cores,
        ..SystemConfig::default()
    };
    cfg.mem_bytes = ((rows * 64) as usize + (16 << 20)).next_power_of_two();
    let mut sys = System::with_config(cfg);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys
        .create_table(schema, rows, MvccConfig::Disabled)
        .unwrap();
    DataGen::new(7)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .unwrap();
    (sys, table)
}

/// Sharded scan of the `scan_throughput` workload shape (4 columns of a
/// 64-byte row), returning (end, checksum, per-core contention delays).
fn sharded_scan(cores: usize, rows: u64) -> (SimTime, u64, Vec<SimTime>) {
    let (mut sys, table) = build(cores, rows);
    let columns = [0usize, 1, 2, 3];
    let src = ScanSource::Rows {
        table: &table,
        columns: &columns,
        snapshot: None,
    };
    sys.begin_measurement(AccessPath::DirectRowWise);
    let mut checksum = 0u64;
    let run = sys.scan_sharded(&src, SimTime::ZERO, |_core, _row, values| {
        checksum = checksum.wrapping_add(values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        RowEffect::default()
    });
    assert_eq!(run.rows, rows);
    let delays = run
        .per_core
        .iter()
        .map(|c| c.cache.l2_contention_delay)
        .collect();
    (run.end, checksum, delays)
}

#[test]
fn four_cores_scale_aggregate_simulated_throughput_over_2x() {
    let rows = 100_000;
    let (end1, sum1, _) = sharded_scan(1, rows);
    let (end4, sum4, _) = sharded_scan(4, rows);
    assert_eq!(sum1, sum4, "sharding must not change the scanned values");
    let scaling = end1.as_nanos_f64() / end4.as_nanos_f64();
    assert!(
        scaling > 2.0,
        "4-core sharded scan should scale aggregate simulated throughput \
         >2x over 1 core, got {scaling:.2}x ({end1} vs {end4})"
    );
}

/// The core-count-beyond-the-cluster sweep (fig13_multicore's 8-core
/// point). Measured on this workload: ~4.5x aggregate at 8 cores — well
/// short of linear, because the four shared-L2 banks and the DRAM bus
/// saturate (row-hit rate drops from ~0.97 to ~0.67). The gate is set
/// from that measurement with margin, and monotonicity over 4 cores is
/// required.
#[test]
fn eight_cores_keep_scaling_past_four() {
    let rows = 100_000;
    let (end1, sum1, _) = sharded_scan(1, rows);
    let (end4, _, _) = sharded_scan(4, rows);
    let (end8, sum8, _) = sharded_scan(8, rows);
    assert_eq!(sum1, sum8, "sharding must not change the scanned values");
    let scaling8 = end1.as_nanos_f64() / end8.as_nanos_f64();
    let scaling4 = end1.as_nanos_f64() / end4.as_nanos_f64();
    assert!(
        scaling8 > 3.5,
        "8-core sharded scan should scale aggregate simulated throughput \
         >3.5x over 1 core (measured ~4.5x), got {scaling8:.2}x"
    );
    assert!(
        scaling8 > scaling4,
        "8 cores must still beat 4 ({scaling8:.2}x vs {scaling4:.2}x)"
    );
}

#[test]
fn shared_l2_contention_is_visible_in_per_core_stats() {
    let (_, _, delays) = sharded_scan(4, 20_000);
    assert!(
        delays.iter().any(|d| !d.is_zero()),
        "at least one core should report shared-L2 bank contention, got {delays:?}"
    );
    // And single-core runs must never report any.
    let (_, _, solo) = sharded_scan(1, 20_000);
    assert!(solo.iter().all(|d| d.is_zero()), "1 core cannot contend");
}

#[test]
fn sharded_scans_are_deterministic() {
    let a = sharded_scan(3, 10_001);
    let b = sharded_scan(3, 10_001);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn core_counts_that_do_not_divide_the_rows_cover_every_row() {
    for (cores, rows) in [(3usize, 10_007u64), (4, 2), (5, 9_999), (7, 13)] {
        let (mut sys, table) = build(cores, rows);
        let columns = [0usize];
        let src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        };
        sys.begin_measurement(AccessPath::DirectRowWise);
        let mut seen = vec![false; rows as usize];
        let run = sys.scan_sharded(&src, SimTime::ZERO, |_core, row, _| {
            assert!(!seen[row as usize], "row {row} scanned twice");
            seen[row as usize] = true;
            RowEffect::default()
        });
        assert_eq!(run.rows, rows, "cores={cores} rows={rows}");
        assert!(seen.iter().all(|&s| s), "cores={cores} rows={rows}");
        // Shards partition the range contiguously.
        let covered: u64 = run.per_core.iter().map(|c| c.shard_rows).sum();
        assert_eq!(covered, rows);
    }
}

#[test]
fn zero_row_tables_scan_to_nothing_on_any_core_count() {
    for cores in [1usize, 4] {
        let (mut sys, table) = build(cores, 0);
        let columns = [0usize];
        let src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        };
        sys.begin_measurement(AccessPath::DirectRowWise);
        let run = sys.scan_sharded(&src, SimTime::ZERO, |_, _, _| {
            panic!("no rows should be scanned")
        });
        assert_eq!(run.rows, 0);
        assert_eq!(run.end, SimTime::ZERO);
        assert_eq!(run.per_core.len(), cores);
    }
}

/// Pins the documented behaviour of single-threaded `scan` on a
/// multi-core system: the shared-L2 bank model stays engaged, so core 0's
/// prefetches contend with its own demand lookups and timing differs
/// (slightly, upward) from a `cores = 1` system, where bank occupancy is
/// bypassed for fidelity to the paper's single-threaded setup.
#[test]
fn single_threaded_scan_on_a_multicore_system_models_self_contention() {
    let rows = 10_000;
    let columns = [0usize, 1, 2, 3];
    let run = |cores: usize| {
        let (mut sys, table) = build(cores, rows);
        let src = ScanSource::Rows {
            table: &table,
            columns: &columns,
            snapshot: None,
        };
        sys.begin_measurement(AccessPath::DirectRowWise);
        let (end, _, _) = sys.scan(&src, SimTime::ZERO, |_, _| RowEffect::default());
        (end, sys.core_stats(0).l2_contended_lookups)
    };
    let (end1, contended1) = run(1);
    let (end4, contended4) = run(4);
    assert_eq!(contended1, 0, "cores=1 bypasses the bank model");
    assert!(contended4 > 0, "core 0 self-contends on a 4-core system");
    assert!(end4 > end1, "self-contention must cost time ({end4} vs {end1})");
    assert!(
        end4.as_nanos_f64() < end1.as_nanos_f64() * 1.15,
        "self-contention should stay a small effect ({end4} vs {end1})"
    );
}

#[test]
fn per_core_dram_traffic_is_attributed() {
    let rows = 10_000;
    let (mut sys, table) = build(4, rows);
    let columns = [0usize, 1, 2, 3];
    let src = ScanSource::Rows {
        table: &table,
        columns: &columns,
        snapshot: None,
    };
    sys.begin_measurement(AccessPath::DirectRowWise);
    let run = sys.scan_sharded(&src, SimTime::ZERO, |_, _, _| RowEffect::default());
    let m = sys.finish_measurement(run.end, run.cpu, AccessPath::DirectRowWise);
    // All four cores fetched their shard from DRAM.
    assert_eq!(m.dram.per_core_accesses.len(), 4);
    assert!(m.dram.per_core_accesses.iter().all(|&n| n > 0));
    // And the aggregate cache counters are the sum of the per-core ones.
    let l1_sum: u64 = (0..4).map(|c| sys.core_stats(c).l1.requests).sum();
    assert_eq!(m.cache.l1.requests, l1_sum);
}

/// Regression test for the multi-frame reorganization-buffer thrash: a
/// sharded ephemeral scan whose shards live in different RME frames must
/// complete with O(cores x frames) frame fetches, not one fetch per
/// access (the naive min-clock schedule re-fetched the frame on nearly
/// every step, which was an effective livelock at scale).
#[test]
fn sharded_ephemeral_scan_spanning_many_frames_stays_frame_granular() {
    let rows: u64 = 12_000;
    let mut platform = relmem_sim::PlatformConfig::zcu102();
    platform.rme.data_spm_bytes = 4 * 1024; // tiny SPM => many frames
    let make = |cores: usize| {
        let mut sys = System::with_config(SystemConfig {
            cores,
            platform: platform.clone(),
            ..SystemConfig::default()
        });
        let schema = Schema::benchmark(4, 4, 64);
        let mut table = sys
            .create_table(schema, rows, MvccConfig::Disabled)
            .unwrap();
        DataGen::new(3)
            .fill_table(sys.mem_mut(), &mut table, rows)
            .unwrap();
        let var = sys
            .register_ephemeral(&table, ColumnGroup::new(vec![0, 1]).unwrap(), None)
            .unwrap();
        (sys, table, var)
    };

    // 2 columns x 4 bytes = 8 packed bytes/row; 4 KB SPM => 512 rows/frame,
    // so 12 000 rows span ~24 frames and every 4-core shard crosses frames.
    let (mut sys, _table, var) = make(4);
    let frames = rows.div_ceil(sys.engine().rows_per_frame().unwrap());
    assert!(frames >= 8, "test needs a multi-frame variable, got {frames}");
    let src = ScanSource::Ephemeral { var: &var };
    sys.begin_measurement(AccessPath::RmeCold);
    let mut sum4 = 0u64;
    let run = sys.scan_sharded(&src, SimTime::ZERO, |_, _, values| {
        sum4 = sum4.wrapping_add(values[0]).wrapping_add(values[1]);
        RowEffect::default()
    });
    assert_eq!(run.rows, rows);
    let fetched = sys
        .finish_measurement(run.end, run.cpu, AccessPath::RmeCold)
        .rme
        .frames_fetched;
    assert!(
        fetched <= frames * 4 + 4,
        "frame fetches must stay frame-granular: {fetched} fetches for {frames} frames"
    );

    // Values agree with a single-core scan of an identical world.
    let (mut solo, _table2, var2) = make(1);
    let src2 = ScanSource::Ephemeral { var: &var2 };
    solo.begin_measurement(AccessPath::RmeCold);
    let mut sum1 = 0u64;
    solo.scan(&src2, SimTime::ZERO, |_, values| {
        sum1 = sum1.wrapping_add(values[0]).wrapping_add(values[1]);
        RowEffect::default()
    });
    assert_eq!(sum4, sum1);
}

#[test]
fn sharded_ephemeral_scan_agrees_with_single_core() {
    let rows = 5_000;
    let (mut sys, table) = build(4, rows);
    let var = sys
        .register_ephemeral(&table, ColumnGroup::new(vec![0, 2]).unwrap(), None)
        .unwrap();
    let src = ScanSource::Ephemeral { var: &var };

    sys.begin_measurement(AccessPath::RmeCold);
    let mut sharded_sum = 0u64;
    let run = sys.scan_sharded(&src, SimTime::ZERO, |_, _, values| {
        sharded_sum = sharded_sum.wrapping_add(values[0]).wrapping_add(values[1]);
        RowEffect::default()
    });
    assert_eq!(run.rows, rows);
    // Engine traffic is attributed per core.
    let served = sys.engine().per_core_requests();
    assert!(served.iter().take(4).all(|&n| n > 0), "{served:?}");

    // Reference: single-core scan of the same variable.
    let (mut solo, table2) = build(1, rows);
    let var2 = solo
        .register_ephemeral(&table2, ColumnGroup::new(vec![0, 2]).unwrap(), None)
        .unwrap();
    let src2 = ScanSource::Ephemeral { var: &var2 };
    solo.begin_measurement(AccessPath::RmeCold);
    let mut solo_sum = 0u64;
    solo.scan(&src2, SimTime::ZERO, |_, values| {
        solo_sum = solo_sum.wrapping_add(values[0]).wrapping_add(values[1]);
        RowEffect::default()
    });
    assert_eq!(sharded_sum, solo_sum);
}
