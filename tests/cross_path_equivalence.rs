//! Cross-crate integration: the hardware projection (RME packing) must be
//! byte-for-byte equivalent to the software projection, for arbitrary
//! schemas and column groups, and every benchmark query must produce
//! identical results on every access path.

use proptest::prelude::*;
use relational_memory::prelude::*;
use relational_memory::core::system::{RowEffect, ScanSource};
use relational_memory::storage::ColumnDef;
use relmem_sim::SimTime;

/// Builds a random (but valid) schema from proptest-chosen column widths.
fn schema_from_widths(widths: &[usize]) -> Schema {
    let defs: Vec<ColumnDef> = widths
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let ty = if w <= 8 {
                ColumnType::UInt(w)
            } else {
                ColumnType::Bytes(w)
            };
            ColumnDef::new(format!("c{i}"), ty)
        })
        .collect();
    Schema::new(defs).expect("generated schema is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random schemas, row counts and column groups, scanning through an
    /// ephemeral variable yields exactly the same values as reading the
    /// fields straight from the row table.
    #[test]
    fn rme_projection_equals_software_projection(
        widths in proptest::collection::vec(1usize..=16, 2..=8),
        rows in 1u64..400,
        seed in 0u64..1_000,
        pick in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
        prop_assume!(!columns.is_empty());

        let mut system = System::with_revision(HwRevision::Mlp, 32 << 20);
        let schema = schema_from_widths(&widths);
        let mut table = system.create_table(schema, rows, MvccConfig::Disabled).unwrap();
        DataGen::new(seed).fill_table(system.mem_mut(), &mut table, rows).unwrap();

        // Software reference: read the fields directly.
        let mut expected: Vec<Vec<u64>> = Vec::new();
        for row in 0..rows {
            expected.push(
                columns
                    .iter()
                    .map(|&c| table.read_field(system.mem(), row, c).unwrap().as_u64()
                        & width_mask(widths[c]))
                    .collect(),
            );
        }

        // Hardware path: ephemeral variable + measured scan.
        let var = system
            .register_ephemeral(&table, ColumnGroup::new(columns.clone()).unwrap(), None)
            .unwrap();
        system.begin_measurement(AccessPath::RmeCold);
        let mut actual: Vec<Vec<u64>> = Vec::new();
        let src = ScanSource::Ephemeral { var: &var };
        system.scan(&src, SimTime::ZERO, |_, values| {
            actual.push(values.to_vec());
            RowEffect::default()
        });
        prop_assert_eq!(actual, expected);
    }
}

/// Values wider than 8 bytes are compared through their low 8 bytes (the
/// numeric view used by the query engine).
fn width_mask(width: usize) -> u64 {
    if width >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * width)) - 1
    }
}

#[test]
fn all_queries_agree_across_paths_and_parameters() {
    for (rows, row_bytes, width) in [(1_500u64, 64usize, 4usize), (1_000, 128, 8)] {
        let params = BenchmarkParams {
            rows,
            inner_rows: rows,
            row_bytes,
            column_width: width,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        for query in Query::all() {
            let reference = bench.run(query, AccessPath::DirectRowWise).output;
            for path in [
                AccessPath::DirectColumnar,
                AccessPath::RmeCold,
                AccessPath::RmeHot,
            ] {
                let run = bench.run(query, path);
                assert_eq!(
                    run.output,
                    reference,
                    "{} disagreed on {} (rows={rows}, row_bytes={row_bytes}, width={width})",
                    query.label(),
                    path.label()
                );
            }
        }
    }
}

#[test]
fn hardware_revisions_agree_on_results() {
    // The revisions differ only in timing; every one must produce the same
    // answers.
    let mut outputs = Vec::new();
    for revision in HwRevision::all() {
        let params = BenchmarkParams {
            rows: 1_000,
            revision,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        outputs.push(bench.run(Query::Q3, AccessPath::RmeCold).output);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}
