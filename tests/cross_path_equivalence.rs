//! Cross-crate integration: the hardware projection (RME packing) must be
//! byte-for-byte equivalent to the software projection, for arbitrary
//! schemas and column groups, and every benchmark query must produce
//! identical results on every access path.

use proptest::prelude::*;
use relational_memory::prelude::*;
use relational_memory::core::system::{RowEffect, ScanSource};
use relational_memory::storage::ColumnDef;
use relmem_sim::SimTime;

/// Builds a random (but valid) schema from proptest-chosen column widths.
fn schema_from_widths(widths: &[usize]) -> Schema {
    let defs: Vec<ColumnDef> = widths
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let ty = if w <= 8 {
                ColumnType::UInt(w)
            } else {
                ColumnType::Bytes(w)
            };
            ColumnDef::new(format!("c{i}"), ty)
        })
        .collect();
    Schema::new(defs).expect("generated schema is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random schemas, row counts and column groups, scanning through an
    /// ephemeral variable yields exactly the same values as reading the
    /// fields straight from the row table.
    #[test]
    fn rme_projection_equals_software_projection(
        widths in proptest::collection::vec(1usize..=16, 2..=8),
        rows in 1u64..400,
        seed in 0u64..1_000,
        pick in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
        prop_assume!(!columns.is_empty());

        let mut system = System::with_revision(HwRevision::Mlp, 32 << 20);
        let schema = schema_from_widths(&widths);
        let mut table = system.create_table(schema, rows, MvccConfig::Disabled).unwrap();
        DataGen::new(seed).fill_table(system.mem_mut(), &mut table, rows).unwrap();

        // Software reference: read the fields directly.
        let mut expected: Vec<Vec<u64>> = Vec::new();
        for row in 0..rows {
            expected.push(
                columns
                    .iter()
                    .map(|&c| table.read_field(system.mem(), row, c).unwrap().as_u64()
                        & width_mask(widths[c]))
                    .collect(),
            );
        }

        // Hardware path: ephemeral variable + measured scan.
        let var = system
            .register_ephemeral(&table, ColumnGroup::new(columns.clone()).unwrap(), None)
            .unwrap();
        system.begin_measurement(AccessPath::RmeCold);
        let mut actual: Vec<Vec<u64>> = Vec::new();
        let src = ScanSource::Ephemeral { var: &var };
        system.scan(&src, SimTime::ZERO, |_, values| {
            actual.push(values.to_vec());
            RowEffect::default()
        });
        prop_assert_eq!(actual, expected);
    }
}

/// Values wider than 8 bytes are compared through their low 8 bytes (the
/// numeric view used by the query engine).
fn width_mask(width: usize) -> u64 {
    if width >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * width)) - 1
    }
}

// ---------------------------------------------------------------------------
// Optimized scan ≡ naive reference scan
// ---------------------------------------------------------------------------

mod scan_equivalence {
    use super::*;
    use relational_memory::cache::HierarchyStats;
    use relational_memory::core::system::RowEffect;
    use relational_memory::core::workload::{QueryStream, Workload, WorkloadOp};
    use relational_memory::dram::DramStats;
    use relational_memory::storage::MvccConfig;

    /// Everything observable about one measured scan.
    #[derive(Debug, Clone, PartialEq)]
    struct ScanRecord {
        end: SimTime,
        cpu: SimTime,
        rows: u64,
        values: Vec<Vec<u64>>,
        cache: HierarchyStats,
        dram: DramStats,
        rme: relational_memory::rme::RmeStats,
    }

    /// Which source/path combination a case exercises.
    #[derive(Debug, Clone, Copy)]
    enum Kind {
        Rows,
        RowsMvccSnapshot,
        Columnar,
        EphemeralCold,
        EphemeralHot,
        EphemeralMvccSnapshot,
    }

    const ALL_KINDS: [Kind; 6] = [
        Kind::Rows,
        Kind::RowsMvccSnapshot,
        Kind::Columnar,
        Kind::EphemeralCold,
        Kind::EphemeralHot,
        Kind::EphemeralMvccSnapshot,
    ];

    /// Which scan engine a case runs through.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Engine {
        /// `System::scan` with the cache fast path on.
        Optimized,
        /// `System::scan_naive` with the cache fast path off.
        Naive,
        /// `System::scan_sharded` on a single core (fast path on). Must be
        /// bit-identical to `Optimized`: one core means one shard covering
        /// every row, stepped in order, with the L2 contention model
        /// bypassed.
        ShardedOneCore,
        /// `System::run_workload` with a single one-scan stream on a
        /// single core (fast path on). Must be bit-identical to
        /// `Optimized`: the workload scheduler has one stream to pick, so
        /// the scan's rows execute in order through the same per-row
        /// stepper, with the L2 contention model bypassed.
        WorkloadOneCore,
    }

    /// Builds a system + table deterministically and runs one scan through
    /// the chosen engine. All calls construct an identical world, so every
    /// divergence is attributable to the scan implementation.
    fn run_case(
        kind: Kind,
        engine: Engine,
        seed: u64,
        widths: &[usize],
        rows: u64,
        columns: &[usize],
    ) -> ScanRecord {
        run_case_stepping(kind, engine, seed, widths, rows, columns, true)
    }

    /// [`run_case`] with explicit control of batched line-granular
    /// stepping (`System::set_batched_stepping`); `false` holds the
    /// per-field stepper up as the oracle.
    #[allow(clippy::too_many_arguments)]
    fn run_case_stepping(
        kind: Kind,
        engine: Engine,
        seed: u64,
        widths: &[usize],
        rows: u64,
        columns: &[usize],
        batched: bool,
    ) -> ScanRecord {
        let mvcc = matches!(
            kind,
            Kind::RowsMvccSnapshot | Kind::EphemeralMvccSnapshot
        );
        let mut sys = System::with_revision(HwRevision::Mlp, 32 << 20);
        let schema = schema_from_widths(widths);
        let mut table = sys
            .create_table(
                schema,
                rows,
                if mvcc {
                    MvccConfig::Enabled
                } else {
                    MvccConfig::Disabled
                },
            )
            .unwrap();
        DataGen::new(seed)
            .fill_table(sys.mem_mut(), &mut table, rows)
            .unwrap();
        if mvcc {
            // Deterministically delete about a third of the rows at ts 5.
            for row in 0..rows {
                if row.wrapping_mul(2654435761) % 3 == 0 {
                    table.mark_deleted(sys.mem_mut(), row, 5).unwrap();
                }
            }
        }
        let snapshot = mvcc.then(|| Snapshot::at(7));
        let scratch = sys.alloc_scratch(64 * 64);

        let columnar;
        let var;
        let (source, path) = match kind {
            Kind::Rows | Kind::RowsMvccSnapshot => (
                ScanSource::Rows {
                    table: &table,
                    columns,
                    snapshot,
                },
                AccessPath::DirectRowWise,
            ),
            Kind::Columnar => {
                columnar = sys.materialize_columnar(&table).unwrap();
                (
                    ScanSource::Columnar {
                        table: &columnar,
                        columns,
                    },
                    AccessPath::DirectColumnar,
                )
            }
            Kind::EphemeralCold | Kind::EphemeralHot | Kind::EphemeralMvccSnapshot => {
                let path = if matches!(kind, Kind::EphemeralHot) {
                    AccessPath::RmeHot
                } else {
                    AccessPath::RmeCold
                };
                var = sys
                    .register_ephemeral(
                        &table,
                        ColumnGroup::new(columns.to_vec()).unwrap(),
                        snapshot,
                    )
                    .unwrap();
                (ScanSource::Ephemeral { var: &var }, path)
            }
        };

        sys.set_cache_fast_path(engine != Engine::Naive);
        sys.set_batched_stepping(batched);
        sys.begin_measurement(path);
        let mut values: Vec<Vec<u64>> = Vec::new();
        // Exercise the closure-effect paths: extra CPU on some rows and
        // an extra memory touch (a hash-table-bucket-like access) on
        // every third row.
        let effect_of = |row: u64| RowEffect {
            cpu: SimTime::from_nanos(row % 5),
            touch: row.is_multiple_of(3).then(|| (scratch + (row % 64) * 64, 8)),
        };
        let per_row = |row: u64, vals: &[u64]| {
            values.push(vals.to_vec());
            effect_of(row)
        };
        let (end, cpu, rows_scanned) = match engine {
            Engine::Optimized => sys.scan(&source, SimTime::ZERO, per_row),
            Engine::Naive => sys.scan_naive(&source, SimTime::ZERO, per_row),
            Engine::ShardedOneCore => {
                let run = sys.scan_sharded(&source, SimTime::ZERO, |core, row, vals: &[u64]| {
                    assert_eq!(core, 0, "one core owns every shard");
                    values.push(vals.to_vec());
                    effect_of(row)
                });
                (run.end, run.cpu, run.rows)
            }
            Engine::WorkloadOneCore => {
                let workload =
                    Workload::new(vec![QueryStream::new(vec![WorkloadOp::olap(source)])]);
                let run = sys
                    .run_workload(&workload, SimTime::ZERO, |core, op, row, vals: &[u64]| {
                        assert_eq!(core, 0, "one stream runs on core 0");
                        assert_eq!(op, 0, "the stream holds a single op");
                        values.push(vals.to_vec());
                        effect_of(row)
                    })
                    .expect("valid workload");
                (run.end, run.cpu, run.rows)
            }
        };
        let m = sys.finish_measurement(end, cpu, path);
        ScanRecord {
            end,
            cpu,
            rows: rows_scanned,
            values,
            cache: m.cache,
            dram: m.dram,
            rme: m.rme,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The optimized scan (per-scan column cursors + per-scan backend +
        /// cache line-resident fast path) must produce the exact same
        /// completion time, CPU time, row count, projected values, cache
        /// counters, DRAM counters and RME counters as the preserved naive
        /// reference loop, for every source kind, with and without MVCC
        /// snapshot filtering.
        #[test]
        fn optimized_scan_is_bit_identical_to_naive_reference(
            widths in proptest::collection::vec(1usize..=12, 2..=6),
            rows in 1u64..250,
            seed in 0u64..1_000,
            pick in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
            prop_assume!(!columns.is_empty());
            for kind in ALL_KINDS {
                let fast = run_case(kind, Engine::Optimized, seed, &widths, rows, &columns);
                let naive = run_case(kind, Engine::Naive, seed, &widths, rows, &columns);
                prop_assert_eq!(&fast, &naive, "diverged for {:?}", kind);
            }
        }

        /// A sharded scan on one core must also be bit-identical to
        /// `System::scan` — same completion time, CPU time, values and
        /// every cache/DRAM/RME counter — for every source kind, with and
        /// without MVCC snapshot filtering. This is the `cores = 1`
        /// equivalence guarantee of the multi-core subsystem.
        #[test]
        fn sharded_one_core_scan_is_bit_identical_to_scan(
            widths in proptest::collection::vec(1usize..=12, 2..=6),
            rows in 1u64..250,
            seed in 0u64..1_000,
            pick in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
            prop_assume!(!columns.is_empty());
            for kind in ALL_KINDS {
                let scan = run_case(kind, Engine::Optimized, seed, &widths, rows, &columns);
                let sharded = run_case(kind, Engine::ShardedOneCore, seed, &widths, rows, &columns);
                prop_assert_eq!(&scan, &sharded, "diverged for {:?}", kind);
            }
        }

        /// Batched line-granular stepping (whole-line runs of fields
        /// through one hierarchy walk, per-field cost replayed
        /// arithmetically) must be bit-identical to stepping every field
        /// individually — same completion time, CPU time, values and every
        /// cache/DRAM/RME counter — for every source kind, with and
        /// without MVCC snapshot filtering, through the single-core, the
        /// sharded and the workload scan paths. This pins the tentpole
        /// optimization: the line plans are a pure reformulation of the
        /// per-field access sequence.
        #[test]
        fn batched_stepping_is_bit_identical_to_per_field(
            widths in proptest::collection::vec(1usize..=12, 2..=6),
            rows in 1u64..250,
            seed in 0u64..1_000,
            pick in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
            prop_assume!(!columns.is_empty());
            for kind in ALL_KINDS {
                for engine in [Engine::Optimized, Engine::ShardedOneCore, Engine::WorkloadOneCore] {
                    let batched =
                        run_case_stepping(kind, engine, seed, &widths, rows, &columns, true);
                    let per_field =
                        run_case_stepping(kind, engine, seed, &widths, rows, &columns, false);
                    prop_assert_eq!(
                        &batched,
                        &per_field,
                        "diverged for {:?} via {:?}",
                        kind,
                        engine
                    );
                }
            }
        }

        /// A workload holding a single one-scan stream on one core must be
        /// bit-identical to `System::scan` — same completion time, CPU
        /// time, values and every cache/DRAM/RME counter — for every
        /// source kind, with and without MVCC snapshot filtering. This is
        /// the `cores = 1` equivalence guarantee of the workload-stream
        /// subsystem: the HTAP scheduler adds concurrency, never cost.
        #[test]
        fn single_stream_workload_is_bit_identical_to_scan(
            widths in proptest::collection::vec(1usize..=12, 2..=6),
            rows in 1u64..250,
            seed in 0u64..1_000,
            pick in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
            prop_assume!(!columns.is_empty());
            for kind in ALL_KINDS {
                let scan = run_case(kind, Engine::Optimized, seed, &widths, rows, &columns);
                let workload = run_case(kind, Engine::WorkloadOneCore, seed, &widths, rows, &columns);
                prop_assert_eq!(&scan, &workload, "diverged for {:?}", kind);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Open-loop traffic ≡ closed-loop stream on the data path
// ---------------------------------------------------------------------------

mod open_loop_equivalence {
    use super::*;
    use relational_memory::cache::HierarchyStats;
    use relational_memory::core::system::RowEffect;
    use relational_memory::core::workload::{QueryStream, Workload, WorkloadOp};
    use relational_memory::core::{AdmissionConfig, OpenLoopOp, OpenLoopStream, OpenLoopWorkload};
    use relational_memory::dram::DramStats;
    use relational_memory::storage::MvccConfig;

    /// Everything the data path produces for one op sequence: the observer
    /// trace (op label, row, projected values) plus every hardware counter.
    /// Deliberately excludes wall-clock (`end`) — open-loop arrival gaps
    /// shift the timeline — but includes charged CPU, which must match.
    #[derive(Debug, Clone, PartialEq)]
    struct PathRecord {
        cpu: SimTime,
        rows: u64,
        trace: Vec<(usize, u64, Vec<u64>)>,
        cache: HierarchyStats,
        dram: DramStats,
        rme: relational_memory::rme::RmeStats,
    }

    /// A deterministic mixed op sequence: scans interleaved with hashed
    /// point lookups (and updates when a UInt column exists).
    fn build_ops<'a>(
        table: &'a RowTable,
        columns: &'a [usize],
        update_col: Option<usize>,
        rows: u64,
        n: u64,
    ) -> Vec<WorkloadOp<'a>> {
        (0..n)
            .map(|i| {
                let row = i.wrapping_mul(2654435761) % rows;
                match (i % 4, update_col) {
                    (0, _) => WorkloadOp::olap(ScanSource::Rows {
                        table,
                        columns,
                        snapshot: None,
                    }),
                    (3, Some(column)) => WorkloadOp::PointUpdate {
                        table,
                        row,
                        column,
                        value: i,
                    },
                    _ => WorkloadOp::PointLookup {
                        table,
                        columns,
                        row,
                    },
                }
            })
            .collect()
    }

    /// Builds an identical world per call and runs the op sequence either
    /// closed-loop (one stream on one core) or open-loop (one low-rate
    /// arrival stream on one core, ample queue, no shedding policy).
    fn run_path(
        open: bool,
        seed: u64,
        widths: &[usize],
        rows: u64,
        columns: &[usize],
        n_ops: u64,
    ) -> PathRecord {
        let mut sys = System::with_revision(HwRevision::Mlp, 32 << 20);
        let schema = schema_from_widths(widths);
        let mut table = sys
            .create_table(schema, rows, MvccConfig::Disabled)
            .unwrap();
        DataGen::new(seed)
            .fill_table(sys.mem_mut(), &mut table, rows)
            .unwrap();
        let update_col = widths.iter().position(|&w| w <= 8);
        let ops = build_ops(&table, columns, update_col, rows, n_ops);

        sys.begin_measurement(AccessPath::DirectRowWise);
        let mut trace: Vec<(usize, u64, Vec<u64>)> = Vec::new();
        let (end, cpu, rows_done) = if open {
            let template: Vec<OpenLoopOp> = ops.into_iter().map(OpenLoopOp::new).collect();
            // One arrival per template op, injected in order at a rate slow
            // enough that the queue sees light (but occasionally nonzero)
            // backlog. The admission policy is inert: ample capacity, no
            // deadline, no timeout, no degradation.
            let workload = OpenLoopWorkload::new(vec![OpenLoopStream::new(
                template,
                50_000.0,
                n_ops,
            )]);
            let cfg = AdmissionConfig {
                seed: seed ^ 0xBEEF,
                queue_capacity: 4096,
                ..AdmissionConfig::default()
            };
            let run = sys
                .run_open_loop(&workload, &cfg, SimTime::ZERO, |core, op, row, vals| {
                    assert_eq!(core, 0);
                    trace.push((op, row, vals.to_vec()));
                    RowEffect::default()
                })
                .expect("valid open-loop workload");
            let o = &run.overload;
            assert_eq!(o.arrivals, n_ops);
            assert_eq!(o.completed, n_ops, "the inert policy admits everything");
            assert_eq!(o.shed() + o.timed_out + o.retries, 0);
            // FIFO admission at one arrival per template op preserves the
            // closed-loop op order exactly.
            for (i, out) in run.streams[0].outcomes.iter().enumerate() {
                assert_eq!(out.template, i);
                assert_eq!(out.attempt, 0);
                assert!(!out.degraded);
            }
            (run.end, run.cpu, run.rows)
        } else {
            let workload = Workload::new(vec![QueryStream::new(ops)]);
            let run = sys
                .run_workload(&workload, SimTime::ZERO, |core, op, row, vals| {
                    assert_eq!(core, 0);
                    trace.push((op, row, vals.to_vec()));
                    RowEffect::default()
                })
                .expect("valid workload");
            (run.end, run.cpu, run.rows)
        };
        let m = sys.finish_measurement(end, cpu, AccessPath::DirectRowWise);
        PathRecord {
            cpu,
            rows: rows_done,
            trace,
            cache: m.cache,
            dram: m.dram,
            rme: m.rme,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// A low-rate open-loop run on one core must execute the exact
        /// same op sequence as the equivalent closed-loop stream, with an
        /// identical observer trace, identical charged CPU and identical
        /// cache/DRAM/RME counters — the admission machinery only delays
        /// *when* ops run, never *what* the data path does. (On one core
        /// with the occupancy DRAM model every data-path counter depends
        /// only on the address sequence, so arrival gaps cannot leak in.)
        #[test]
        fn low_rate_open_loop_is_counter_identical_to_closed_loop(
            widths in proptest::collection::vec(1usize..=12, 2..=6),
            rows in 1u64..200,
            seed in 0u64..1_000,
            pick in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
            prop_assume!(!columns.is_empty());
            let closed = run_path(false, seed, &widths, rows, &columns, 12);
            let open = run_path(true, seed, &widths, rows, &columns, 12);
            prop_assert_eq!(&closed, &open);
        }
    }
}

// ---------------------------------------------------------------------------
// Transactions ≡ flat point ops on the data path
// ---------------------------------------------------------------------------

mod txn_equivalence {
    use super::*;
    use relational_memory::cache::HierarchyStats;
    use relational_memory::core::system::RowEffect;
    use relational_memory::core::workload::{QueryStream, Workload, WorkloadOp};
    use relational_memory::core::{TxnOp, TxnSpec};
    use relational_memory::dram::DramStats;
    use relational_memory::storage::MvccConfig;
    use relmem_sim::TxnStats;

    /// Everything the data path produces for one run. The observer trace
    /// drops the op label (one transaction is one op; its flat expansion is
    /// many) but keeps row and projected values, and — unlike the open-loop
    /// record — *includes* `end`: on one core the transaction scheduler
    /// adds no time of its own, so even the wall clock must match.
    #[derive(Debug, Clone, PartialEq)]
    struct TxnRecord {
        end: SimTime,
        cpu: SimTime,
        rows: u64,
        trace: Vec<(u64, Vec<u64>)>,
        cache: HierarchyStats,
        dram: DramStats,
        rme: relational_memory::rme::RmeStats,
    }

    /// One generated transaction: `(row, column, value)` updates plus
    /// `(row)` reads, derived deterministically from the proptest seed.
    /// Rows are distinct *across* transactions (conflict-free by
    /// construction — each transaction owns a disjoint row stripe).
    struct GenTxn {
        reads: Vec<u64>,
        updates: Vec<(u64, usize, u64)>,
    }

    fn gen_txns(n_txns: u64, ops_per_txn: u64, rows: u64, update_col: usize, seed: u64) -> Vec<GenTxn> {
        (0..n_txns)
            .map(|t| {
                // Disjoint per-transaction stripe, so no two transactions
                // ever claim the same row even if they were concurrent.
                let stripe = rows / n_txns.max(1);
                let lo = t * stripe;
                let span = stripe.max(1);
                let mut reads = Vec::new();
                let mut updates = Vec::new();
                for i in 0..ops_per_txn {
                    let row = lo + (seed ^ (t << 8) ^ i).wrapping_mul(2654435761) % span;
                    if i % 3 == 2 {
                        updates.push((row, update_col, seed + t * 100 + i));
                    } else {
                        reads.push(row);
                    }
                }
                GenTxn { reads, updates }
            })
            .collect()
    }

    /// Runs the generated transactions either as [`WorkloadOp::Txn`] ops or
    /// as their flat expansion (each transaction's reads in spec order,
    /// then its updates in spec order — the exact order the transaction
    /// layer charges them), on one core over an identically built world.
    fn run_txn_path(
        flat: bool,
        seed: u64,
        widths: &[usize],
        rows: u64,
        columns: &[usize],
        txns: &[GenTxn],
    ) -> (TxnRecord, TxnStats) {
        let mut sys = System::with_revision(HwRevision::Mlp, 32 << 20);
        let schema = schema_from_widths(widths);
        let mut table = sys
            .create_table(schema, rows, MvccConfig::Disabled)
            .unwrap();
        DataGen::new(seed)
            .fill_table(sys.mem_mut(), &mut table, rows)
            .unwrap();

        let specs: Vec<TxnSpec> = txns
            .iter()
            .map(|t| {
                let mut ops: Vec<TxnOp> = t
                    .reads
                    .iter()
                    .map(|&row| TxnOp::Read {
                        table: &table,
                        columns,
                        row,
                    })
                    .collect();
                ops.extend(t.updates.iter().map(|&(row, column, value)| TxnOp::Update {
                    table: &table,
                    row,
                    column,
                    value,
                }));
                TxnSpec::new(ops)
            })
            .collect();
        let ops: Vec<WorkloadOp> = if flat {
            txns.iter()
                .flat_map(|t| {
                    t.reads
                        .iter()
                        .map(|&row| WorkloadOp::PointLookup {
                            table: &table,
                            columns,
                            row,
                        })
                        .chain(t.updates.iter().map(|&(row, column, value)| {
                            WorkloadOp::PointUpdate {
                                table: &table,
                                row,
                                column,
                                value,
                            }
                        }))
                        .collect::<Vec<_>>()
                })
                .collect()
        } else {
            specs.iter().map(|spec| WorkloadOp::Txn { spec }).collect()
        };

        sys.begin_measurement(AccessPath::DirectRowWise);
        let mut trace: Vec<(u64, Vec<u64>)> = Vec::new();
        let workload = Workload::new(vec![QueryStream::new(ops)]);
        let run = sys
            .run_workload(&workload, SimTime::ZERO, |core, _, row, vals| {
                assert_eq!(core, 0);
                trace.push((row, vals.to_vec()));
                RowEffect::default()
            })
            .expect("valid workload");
        let m = sys.finish_measurement(run.end, run.cpu, AccessPath::DirectRowWise);
        (
            TxnRecord {
                end: run.end,
                cpu: run.cpu,
                rows: run.rows,
                trace,
                cache: m.cache,
                dram: m.dram,
                rme: m.rme,
            },
            run.txn,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// A conflict-free transactional workload on one core over a
        /// non-MVCC table must be counter-identical — observer trace,
        /// charged CPU, wall clock, cache/DRAM/RME counters — to the flat
        /// point-op sequence that executes each transaction's reads then
        /// its updates. Grouping ops into atomic units adds bookkeeping,
        /// never simulated work: begin is free, intents buffer without
        /// charge on non-MVCC tables, and commit replays the exact
        /// point-update bodies.
        #[test]
        fn conflict_free_txn_is_counter_identical_to_flat_ops(
            widths in proptest::collection::vec(1usize..=12, 2..=6),
            rows in 8u64..200,
            seed in 0u64..1_000,
            n_txns in 1u64..5,
            ops_per_txn in 1u64..8,
            pick in proptest::collection::vec(any::<bool>(), 6),
        ) {
            let columns: Vec<usize> = (0..widths.len()).filter(|&i| pick[i]).collect();
            prop_assume!(!columns.is_empty());
            let update_col = widths.iter().position(|&w| w <= 8);
            prop_assume!(update_col.is_some());
            let txns = gen_txns(n_txns, ops_per_txn, rows, update_col.unwrap(), seed);

            let (flat, flat_stats) = run_txn_path(true, seed, &widths, rows, &columns, &txns);
            let (txn, txn_stats) = run_txn_path(false, seed, &widths, rows, &columns, &txns);
            prop_assert_eq!(&txn, &flat);
            prop_assert_eq!(flat_stats, TxnStats::default(), "flat runs begin no transactions");
            prop_assert_eq!(txn_stats.begun, n_txns);
            prop_assert_eq!(txn_stats.committed, n_txns);
            prop_assert_eq!(txn_stats.aborted_conflict + txn_stats.aborted_shed, 0);
        }
    }

    /// Contended multi-core transactional runs are deterministic: the same
    /// construction replays to the same commit/abort counts *and* the same
    /// abort victims (core, op, attempt, local time), run after run.
    #[test]
    fn contended_txn_replay_is_deterministic() {
        fn run_once() -> (TxnStats, Vec<relational_memory::core::TxnAbort>, SimTime) {
            let rows: u64 = 500;
            let mut sys = System::with_config(relational_memory::core::SystemConfig {
                cores: 4,
                mem_bytes: 32 << 20,
                ..Default::default()
            });
            let schema = schema_from_widths(&[4, 4, 8]);
            let mut table = sys
                .create_table(schema, rows, MvccConfig::Enabled)
                .unwrap();
            DataGen::new(7)
                .fill_table(sys.mem_mut(), &mut table, rows)
                .unwrap();
            let read_columns = [0usize, 1];
            // Every core hammers row 0 (plus a private row), with one
            // in-place retry — guaranteed first-updater-wins conflicts.
            let specs: Vec<TxnSpec> = (0..4usize)
                .flat_map(|core| {
                    (0..6u64).map(move |i| (core, i))
                })
                .map(|(core, i)| {
                    TxnSpec::new(vec![
                        TxnOp::Read {
                            table: &table,
                            columns: &read_columns,
                            row: 0,
                        },
                        TxnOp::Update {
                            table: &table,
                            row: 0,
                            column: 0,
                            value: i,
                        },
                        TxnOp::Update {
                            table: &table,
                            row: 1 + (core as u64) * 10 + i,
                            column: 1,
                            value: i,
                        },
                    ])
                    .with_retries(3)
                })
                .collect();
            let streams: Vec<QueryStream> = specs
                .chunks(6)
                .map(|chunk| {
                    QueryStream::new(chunk.iter().map(|spec| WorkloadOp::Txn { spec }).collect())
                })
                .collect();
            let workload = Workload::new(streams);
            sys.begin_measurement(AccessPath::DirectRowWise);
            let run = sys
                .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
                .expect("valid workload");
            assert!(run.txn.is_consistent());
            (run.txn, run.txn_aborts, run.end)
        }

        let (stats_a, aborts_a, end_a) = run_once();
        let (stats_b, aborts_b, end_b) = run_once();
        assert!(
            stats_a.aborted_conflict > 0,
            "four cores hammering one row must conflict: {stats_a:?}"
        );
        assert_eq!(stats_a, stats_b, "commit/abort counts must replay exactly");
        assert_eq!(aborts_a, aborts_b, "abort victims must replay exactly");
        assert_eq!(end_a, end_b, "the makespan must replay exactly");
    }
}

#[test]
fn all_queries_agree_across_paths_and_parameters() {
    for (rows, row_bytes, width) in [(1_500u64, 64usize, 4usize), (1_000, 128, 8)] {
        let params = BenchmarkParams {
            rows,
            inner_rows: rows,
            row_bytes,
            column_width: width,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        for query in Query::all() {
            let reference = bench.run(query, AccessPath::DirectRowWise).output;
            for path in [
                AccessPath::DirectColumnar,
                AccessPath::RmeCold,
                AccessPath::RmeHot,
            ] {
                let run = bench.run(query, path);
                assert_eq!(
                    run.output,
                    reference,
                    "{} disagreed on {} (rows={rows}, row_bytes={row_bytes}, width={width})",
                    query.label(),
                    path.label()
                );
            }
        }
    }
}

#[test]
fn hardware_revisions_agree_on_results() {
    // The revisions differ only in timing; every one must produce the same
    // answers.
    let mut outputs = Vec::new();
    for revision in HwRevision::all() {
        let params = BenchmarkParams {
            rows: 1_000,
            revision,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        outputs.push(bench.run(Query::Q3, AccessPath::RmeCold).output);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}
