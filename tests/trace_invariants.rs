//! Invariants of the simulated-time trace layer (`relmem_sim::trace`).
//!
//! The observability contract the rest of the workspace relies on:
//!
//! * per-track timestamps are monotone after [`Trace::merge`],
//! * synchronous (`ph: "X"`) spans are disjoint-or-nested per track,
//! * `Degrade` events on the system track carry exactly the timestamps
//!   of [`OverloadStats::transitions`],
//! * the Chrome-trace export validates against the schema Perfetto
//!   requires, with per-track event counts matching the in-memory trace,
//! * identical runs produce byte-identical traces, and
//! * installing the recording sink changes *nothing* about the
//!   simulation: every counter stays bit-identical to a no-op-sink run
//!   (spot-checked on the overload scenario, property-tested on random
//!   single-core workloads).

use proptest::prelude::*;
use relational_memory::core::system::{RowEffect, ScanSource, SystemConfig};
use relational_memory::core::workload::{QueryStream, Workload, WorkloadOp};
use relational_memory::prelude::*;
use relmem_sim::trace::SpanStyle;
use relmem_sim::{validate_chrome_trace, SimTime, Trace, TraceEventKind, Track};
use std::collections::BTreeMap;

fn build(cores: usize, rows: u64) -> (System, RowTable) {
    let mut cfg = SystemConfig {
        cores,
        ..SystemConfig::default()
    };
    cfg.mem_bytes = ((rows * 96) as usize + (16 << 20)).next_power_of_two();
    let mut sys = System::with_config(cfg);
    let schema = Schema::benchmark(4, 4, 64);
    let mut table = sys
        .create_table(schema, rows + 16, MvccConfig::Disabled)
        .unwrap();
    DataGen::new(7)
        .fill_table(sys.mem_mut(), &mut table, rows)
        .unwrap();
    (sys, table)
}

// ---------------------------------------------------------------------------
// The shared scenario: an open-loop HTAP mix pushed past its saturation
// knee, so the trace contains the full taxonomy — op lifecycle (arrivals,
// admissions, sheds, timeouts), degraded-mode transitions, RME frame
// fetches from the downgraded scans, and cache/DRAM activity.
// ---------------------------------------------------------------------------

fn oltp_op(table: &RowTable, i: u64) -> WorkloadOp<'_> {
    const OLTP_COLUMNS: &[usize] = &[1, 2];
    let row = i.wrapping_mul(2654435761) % table.num_rows();
    if i % 5 == 4 {
        WorkloadOp::PointUpdate {
            table,
            row,
            column: 1,
            value: i,
        }
    } else {
        WorkloadOp::PointLookup {
            table,
            columns: OLTP_COLUMNS,
            row,
        }
    }
}

/// Runs the overloaded open-loop mix (OLTP arrivals at 4x the calibrated
/// service rate on core 0, degradable scans on cores 1-3), optionally
/// recording a trace. The run is deterministic: identical calls return
/// identical results whether or not the trace is recorded.
fn overloaded_htap(trace: bool) -> (OpenLoopRun, Option<Trace>) {
    let rows: u64 = 4_000;
    let scan_columns = [0usize];

    // Calibrate the 1.0x arrival rate (inverse mean OLTP service time) and
    // one scan's length from a contended closed-loop run.
    let (mean_ns, scan_dur) = {
        let (mut sys, table) = build(4, rows);
        let src = ScanSource::Rows {
            table: &table,
            columns: &scan_columns,
            snapshot: None,
        };
        let ops: Vec<WorkloadOp> = (0..400).map(|i| oltp_op(&table, i)).collect();
        let workload = Workload::new(vec![
            QueryStream::new(ops),
            QueryStream::new(vec![WorkloadOp::olap(src)]),
            QueryStream::new(vec![WorkloadOp::olap(src)]),
            QueryStream::new(vec![WorkloadOp::olap(src)]),
        ]);
        sys.begin_measurement(AccessPath::DirectRowWise);
        let run = sys
            .run_workload(&workload, SimTime::ZERO, |_, _, _, _| RowEffect::default())
            .expect("valid workload");
        (
            run.oltp_latencies().mean_nanos().max(1.0),
            run.streams[1].ops[0].latency().max(SimTime::from_nanos(1)),
        )
    };

    let (mut sys, table) = build(4, rows);
    let var = sys
        .register_ephemeral(&table, ColumnGroup::new(vec![0]).unwrap(), None)
        .unwrap();
    let oltp_template: Vec<OpenLoopOp> = (0..100)
        .map(|i| OpenLoopOp::new(oltp_op(&table, i)))
        .collect();
    let scan_template = vec![OpenLoopOp::with_degraded(
        WorkloadOp::olap(ScanSource::Rows {
            table: &table,
            columns: &scan_columns,
            snapshot: None,
        }),
        WorkloadOp::olap(ScanSource::Ephemeral { var: &var }),
    )];
    let mut streams = vec![OpenLoopStream::new(
        oltp_template,
        1e9 / mean_ns * 4.0,
        400,
    )];
    for _ in 1..4 {
        streams.push(OpenLoopStream::new(
            scan_template.clone(),
            1e9 / (1.5 * scan_dur.as_nanos_f64()),
            6,
        ));
    }
    let cfg = AdmissionConfig {
        seed: 42,
        queue_capacity: 32,
        delay_budget: Some(scan_dur.scaled(8)),
        timeout: Some(scan_dur.scaled(16)),
        max_retries: 2,
        retry_backoff: SimTime::from_nanos(mean_ns as u64 + 1),
        degrade: Some(DegradePolicy {
            high_watermark: 24,
            low_watermark: 4,
            trigger_after: 8,
            clear_after: 16,
        }),
    };
    sys.begin_measurement(AccessPath::DirectRowWise);
    // Trace only the measured run: setup traffic never reaches the buffers.
    sys.set_tracing(trace);
    let run = sys
        .run_open_loop(
            &OpenLoopWorkload::new(streams),
            &cfg,
            SimTime::ZERO,
            |_, _, _, _| RowEffect::default(),
        )
        .expect("valid open-loop workload");
    let captured = trace.then(|| sys.take_trace());
    (run, captured)
}

/// Synchronous spans must be disjoint-or-nested per track (touching
/// endpoints and zero-duration spans allowed). Events arrive sorted by
/// start time, so a stack walk per track suffices.
fn assert_sync_spans_well_nested(trace: &Trace) {
    let mut stacks: BTreeMap<u32, Vec<(SimTime, SimTime)>> = BTreeMap::new();
    for e in &trace.events {
        if e.kind.style() != SpanStyle::Sync {
            continue;
        }
        let stack = stacks.entry(e.track.tid()).or_default();
        while let Some(&(_, top_end)) = stack.last() {
            if top_end <= e.at {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(top_start, top_end)) = stack.last() {
            assert!(
                e.end() <= top_end,
                "sync span [{:?}, {:?}] straddles enclosing [{top_start:?}, {top_end:?}] \
                 on track {:?}",
                e.at,
                e.end(),
                e.track,
            );
        }
        stack.push((e.at, e.end()));
    }
}

#[test]
fn trace_invariants_hold_on_an_overloaded_open_loop_run() {
    let (run, trace) = overloaded_htap(true);
    let trace = trace.expect("tracing was requested");
    assert!(!trace.events.is_empty(), "the traced run recorded nothing");

    // Per-track monotone timestamps after the merge.
    let mut last: BTreeMap<u32, SimTime> = BTreeMap::new();
    for e in &trace.events {
        let prev = last.entry(e.track.tid()).or_insert(SimTime::ZERO);
        assert!(
            e.at >= *prev,
            "track {:?} went backwards: {:?} after {prev:?}",
            e.track,
            e.at,
        );
        *prev = e.at;
    }

    assert_sync_spans_well_nested(&trace);

    // Degrade events on the system track mirror OverloadStats::transitions
    // exactly: same count, same timestamps, same direction.
    let degrades: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Degrade)
        .collect();
    assert!(
        !run.overload.transitions.is_empty(),
        "the scenario must actually degrade: {:?}",
        run.overload,
    );
    assert_eq!(degrades.len(), run.overload.transitions.len());
    for (event, transition) in degrades.iter().zip(&run.overload.transitions) {
        assert_eq!(event.track, Track::System);
        assert_eq!(event.at, transition.at, "trace and stats disagree on when");
        assert_eq!(
            event.arg0 == 1,
            transition.degraded,
            "trace and stats disagree on the direction at {:?}",
            transition.at,
        );
    }

    // Every layer of the system shows up on its own track.
    let counts = trace.events_per_track();
    for core in 0..4 {
        assert!(
            counts.contains_key(&Track::Core(core)),
            "core {core} recorded nothing: {counts:?}"
        );
    }
    assert!(counts.contains_key(&Track::System));
    assert!(counts.keys().any(|t| matches!(t, Track::L2Bank(_))));
    assert!(counts.keys().any(|t| matches!(t, Track::DramBank(_))));
    if run.overload.degraded_ops > 0 {
        assert!(
            counts.contains_key(&Track::Rme),
            "degraded scans ran on the RME but its track is empty"
        );
    }

    // The Chrome export validates against the Perfetto-required schema and
    // its per-track counts agree with the in-memory trace (async spans
    // export as begin/end pairs, hence count twice).
    let summary = validate_chrome_trace(&trace.to_chrome_json()).expect("export validates");
    let mut expected: BTreeMap<u64, usize> = BTreeMap::new();
    for e in &trace.events {
        let weight = if e.kind.style() == SpanStyle::Async { 2 } else { 1 };
        *expected.entry(e.track.tid() as u64).or_insert(0) += weight;
    }
    assert_eq!(summary.events_per_tid, expected);
    for &track in counts.keys() {
        assert_eq!(
            summary.track_names.get(&(track.tid() as u64)),
            Some(&track.name()),
            "track {track:?} is missing its thread-name metadata"
        );
    }
}

#[test]
fn identical_runs_produce_byte_identical_traces() {
    let (run_a, trace_a) = overloaded_htap(true);
    let (run_b, trace_b) = overloaded_htap(true);
    assert_eq!(run_a.overload, run_b.overload);
    let (trace_a, trace_b) = (trace_a.unwrap(), trace_b.unwrap());
    assert_eq!(trace_a, trace_b, "recorded event lists diverged");
    assert_eq!(
        trace_a.to_chrome_json(),
        trace_b.to_chrome_json(),
        "serialized traces diverged"
    );
}

#[test]
fn recording_sink_leaves_the_overload_run_bit_identical() {
    let (plain, none) = overloaded_htap(false);
    let (traced, some) = overloaded_htap(true);
    assert!(none.is_none());
    assert!(some.is_some());
    assert_eq!(plain.end, traced.end);
    assert_eq!(plain.cpu, traced.cpu);
    assert_eq!(plain.rows, traced.rows);
    assert_eq!(plain.overload, traced.overload);
    assert_eq!(plain.txn, traced.txn);
    assert_eq!(
        format!("{:?}", plain.streams),
        format!("{:?}", traced.streams),
        "per-stream reports diverged under recording"
    );
}

// ---------------------------------------------------------------------------
// Property test: on random single-core open-loop workloads, a recording
// sink never perturbs the simulation — run end, charged CPU, admission
// counters, per-op outcomes and the full cache/DRAM measurement are
// bit-identical to the no-op-sink run.
// ---------------------------------------------------------------------------

fn random_open_loop(
    rows: u64,
    seed: u64,
    n_ops: u64,
    rate: f64,
    record: bool,
) -> (OpenLoopRun, String, bool) {
    let (mut sys, table) = build(1, rows);
    let template: Vec<OpenLoopOp> = (0..n_ops.min(48))
        .map(|i| OpenLoopOp::new(oltp_op(&table, i.wrapping_mul(seed | 1))))
        .collect();
    let workload = OpenLoopWorkload::new(vec![OpenLoopStream::new(template, rate, n_ops)]);
    // A small queue so high random rates exercise the shed path too.
    let cfg = AdmissionConfig {
        seed: seed ^ 0xBEEF,
        queue_capacity: 4,
        ..AdmissionConfig::default()
    };
    sys.begin_measurement(AccessPath::DirectRowWise);
    sys.set_tracing(record);
    let run = sys
        .run_open_loop(&workload, &cfg, SimTime::ZERO, |_, _, _, _| {
            RowEffect::default()
        })
        .expect("valid open-loop workload");
    let measurement = sys.finish_measurement(run.end, run.cpu, AccessPath::DirectRowWise);
    let recorded = if record {
        !sys.take_trace().events.is_empty()
    } else {
        false
    };
    (run, format!("{measurement:?}"), recorded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn recording_vs_noop_sinks_are_counter_identical(
        rows in 1u64..200,
        seed in 0u64..1_000,
        n_ops in 1u64..40,
        rate_exp in 4u32..9,
    ) {
        let rate = 10f64.powi(rate_exp as i32);
        let (plain, plain_m, _) = random_open_loop(rows, seed, n_ops, rate, false);
        let (traced, traced_m, recorded) = random_open_loop(rows, seed, n_ops, rate, true);
        prop_assert!(recorded, "a completed run must record at least one event");
        prop_assert_eq!(plain.end, traced.end);
        prop_assert_eq!(plain.cpu, traced.cpu);
        prop_assert_eq!(plain.rows, traced.rows);
        prop_assert_eq!(&plain.overload, &traced.overload);
        prop_assert_eq!(&plain.txn, &traced.txn);
        prop_assert_eq!(
            format!("{:?}", plain.streams),
            format!("{:?}", traced.streams)
        );
        prop_assert_eq!(plain_m, traced_m);
    }
}
