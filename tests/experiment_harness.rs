//! Smoke tests of the experiment harness: every figure/table generator runs
//! (at quick scale) and produces well-formed, non-trivial output.

use relmem_bench::{all_experiments, experiment_by_id};

#[test]
fn every_experiment_runs_at_quick_scale() {
    for id in all_experiments() {
        let experiment = experiment_by_id(id, true, false)
            .unwrap_or_else(|| panic!("experiment {id} is registered"));
        assert_eq!(experiment.id, id);
        assert!(!experiment.tables.is_empty(), "{id} produced no tables");
        for table in &experiment.tables {
            assert!(!table.rows.is_empty(), "{id}: table {:?} is empty", table.title);
            let text = table.render_text();
            assert!(text.contains('|'), "{id}: table did not render");
        }
    }
}

#[test]
fn unknown_experiment_ids_are_rejected() {
    assert!(experiment_by_id("fig99", true, false).is_none());
}

#[test]
fn figure7_quick_output_shows_rme_beating_direct_access() {
    let experiment = experiment_by_id("fig7", true, false).unwrap();
    let table = &experiment.tables[0];
    // Columns: width | Direct Row-Wise | RME Cold | RME Hot | Direct Columnar.
    for row in &table.rows {
        let direct: f64 = row[1].parse().unwrap();
        let cold: f64 = row[2].parse().unwrap();
        let hot: f64 = row[3].parse().unwrap();
        assert!(cold < direct, "RME cold must beat direct row-wise at width {}", row[0]);
        assert!(hot <= cold * 1.01, "RME hot must not exceed cold at width {}", row[0]);
    }
}

#[test]
fn table2_quick_output_matches_the_papers_magnitudes() {
    let experiment = experiment_by_id("table2", true, false).unwrap();
    let row = &experiment.tables[0].rows[0];
    let lut: f64 = row[1].parse().unwrap();
    let bram: f64 = row[3].parse().unwrap();
    assert!(lut < 5.0, "LUT utilisation should stay in single digits, got {lut}");
    assert!((bram - 60.69).abs() < 10.0, "BRAM utilisation should be ~60%, got {bram}");
}
