//! Join pre-processing: Q5's hash join with the RME projecting only the join
//! keys and payload columns of both relations.
//!
//! Reproduces the observation behind Figure 12: the CPU-side hashing cost is
//! identical on both paths, but the RME cuts the data-movement share of the
//! runtime because only `S.(A1,A2)` and `R.(A2,A3)` ever cross the memory
//! hierarchy, not the full rows.
//!
//! Run with: `cargo run --release --example join_offload`

use relational_memory::prelude::*;

fn main() {
    println!("Q5: SELECT S.A1, R.A3 FROM S JOIN R ON S.A2 = R.A2\n");
    println!(
        "{:>9} | {:>14} {:>14} {:>14} | {:>14} {:>14} {:>14} | {:>10}",
        "row (B)", "direct (ms)", "cpu", "data", "RME (ms)", "cpu", "data", "data saved"
    );
    println!("{}", "-".repeat(118));
    for row_bytes in [16usize, 32, 64, 128, 256] {
        let params = BenchmarkParams {
            rows: 20_000,
            inner_rows: 20_000,
            row_bytes,
            column_width: 4,
            match_fraction: 0.5,
            ..BenchmarkParams::default()
        };
        let mut bench = Benchmark::new(params);
        let direct = bench.run(Query::Q5, AccessPath::DirectRowWise);
        let rme = bench.run(Query::Q5, AccessPath::RmeCold);
        assert_eq!(direct.output, rme.output, "join results must match");
        let dm = &direct.measurement;
        let rm = &rme.measurement;
        let saved = 100.0 * (1.0 - rm.data_time().as_nanos_f64() / dm.data_time().as_nanos_f64());
        println!(
            "{:>9} | {:>14.3} {:>14.3} {:>14.3} | {:>14.3} {:>14.3} {:>14.3} | {:>9.1}%",
            row_bytes,
            dm.elapsed.as_millis_f64(),
            dm.cpu_time.as_millis_f64(),
            dm.data_time().as_millis_f64(),
            rm.elapsed.as_millis_f64(),
            rm.cpu_time.as_millis_f64(),
            rm.data_time().as_millis_f64(),
            saved,
        );
    }
    println!(
        "\nHashing dominates and is path-independent; the RME attacks the data-movement share,\n\
         which grows with row width — matching the paper's Figure 12."
    );
}
