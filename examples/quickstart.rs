//! Quickstart: register an ephemeral variable and run the paper's motivating
//! query (Listing 3) through it.
//!
//! ```text
//! SELECT sum(num_fld1 * num_fld4) FROM the_table WHERE num_fld3 > 10;
//! ```
//!
//! The table is stored row-major (Listing 1's ten-column schema); the query
//! only needs three of the ten columns, so an ephemeral variable projecting
//! `num_fld1, num_fld3, num_fld4` is registered with the Relational Memory
//! Engine and the query loop reads the packed projection — exactly the code
//! shape of Listing 4.
//!
//! Run with: `cargo run --release --example quickstart`

use relational_memory::prelude::*;
use relational_memory::core::system::{RowEffect, ScanSource};
use relmem_sim::SimTime;

fn main() {
    // 1. A platform with the MLP revision of the engine and 64 MiB of
    //    simulated physical memory.
    let mut system = System::with_revision(HwRevision::Mlp, 64 << 20);

    // 2. Load `the_table`: Listing 1's schema, 50 000 rows of synthetic data.
    let rows = 50_000u64;
    let schema = Schema::listing1();
    let mut table = system
        .create_table(schema, rows, MvccConfig::Disabled)
        .expect("table fits in memory");
    DataGen::new(7)
        .fill_table(system.mem_mut(), &mut table, rows)
        .expect("data generation succeeds");

    // 3. register_var(the_table, num_fld1, num_fld3, num_fld4)
    let num_fld1 = table.schema().index_of("num_fld1").unwrap();
    let num_fld3 = table.schema().index_of("num_fld3").unwrap();
    let num_fld4 = table.schema().index_of("num_fld4").unwrap();
    let group = ColumnGroup::new(vec![num_fld1, num_fld3, num_fld4]).unwrap();
    let cg = system
        .register_ephemeral(&table, group, None)
        .expect("ephemeral registration succeeds");
    println!(
        "registered ephemeral variable: {} rows x {} packed bytes ({} KiB projected from {} KiB of base data)",
        cg.rows(),
        cg.packed_row_bytes(),
        cg.total_bytes() / 1024,
        rows * table.schema().row_bytes() as u64 / 1024,
    );

    // 4. The query loop of Listing 4, measured on the simulated platform.
    let run_query = |system: &mut System, source: &ScanSource<'_>, path: AccessPath| {
        system.begin_measurement(path);
        let agg = system.cost_model().aggregate();
        let pred = system.cost_model().predicate();
        let mut sum: u64 = 0;
        let (end, cpu, _) = system.scan(source, SimTime::ZERO, |_, v| {
            // v = [num_fld1, num_fld3, num_fld4]
            let mut extra = pred;
            if v[1] > 10 {
                sum = sum.wrapping_add(v[0].wrapping_mul(v[2]));
                extra += agg;
            }
            RowEffect { cpu: extra, touch: None }
        });
        let m = system.finish_measurement(end, cpu, path);
        (sum, m)
    };

    // Through the ephemeral variable (cold Reorganization Buffer)...
    let eph = ScanSource::Ephemeral { var: &cg };
    let (sum_rme, m_rme) = run_query(&mut system, &eph, AccessPath::RmeCold);

    // ...and directly over the row-major base data.
    let columns = [num_fld1, num_fld3, num_fld4];
    let rows_src = ScanSource::Rows {
        table: &table,
        columns: &columns,
        snapshot: None,
    };
    let (sum_direct, m_direct) = run_query(&mut system, &rows_src, AccessPath::DirectRowWise);

    assert_eq!(sum_rme, sum_direct, "both paths must compute the same result");
    println!("\nSELECT sum(num_fld1 * num_fld4) WHERE num_fld3 > 10  =  {sum_rme}");
    println!(
        "  direct row-wise : {:>10.1} us   ({} L1 misses, {} DRAM bytes)",
        m_direct.elapsed_us(),
        m_direct.cache.l1.misses,
        m_direct.dram.bytes_transferred,
    );
    println!(
        "  relational mem. : {:>10.1} us   ({} L1 misses, {} DRAM bytes, {} useful bytes packed)",
        m_rme.elapsed_us(),
        m_rme.cache.l1.misses,
        m_rme.dram.bytes_transferred,
        m_rme.rme.useful_bytes,
    );
    println!(
        "  speedup         : {:>10.2}x",
        m_direct.elapsed_us() / m_rme.elapsed_us()
    );
}
