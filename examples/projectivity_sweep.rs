//! Projectivity sweep: the row-store / column-store / Relational-Memory
//! trade-off of Figure 1 and Figure 9.
//!
//! Runs Q1 (project k columns) for k = 1..=11 over the three interesting
//! paths and prints a small table: direct row-wise access is flat but always
//! pays for full rows, a pure column-store degrades as projectivity (and
//! tuple reconstruction) grows, and the RME tracks the cheaper of the two.
//!
//! Run with: `cargo run --release --example projectivity_sweep`

use relational_memory::prelude::*;

fn main() {
    let params = BenchmarkParams {
        rows: 20_000,
        row_bytes: 64,
        column_width: 4,
        ..BenchmarkParams::default()
    };
    let mut bench = Benchmark::new(params);

    println!("Q1: SELECT A1..Ak FROM S     (20 000 rows of 64 B, 4 B columns)\n");
    println!(
        "{:>3} | {:>16} | {:>16} | {:>16} | {:>9}",
        "k", "row-wise (us)", "columnar (us)", "RME cold (us)", "RME/row"
    );
    println!("{}", "-".repeat(76));
    for k in 1..=11usize {
        let query = Query::Q1 { projectivity: k };
        let row = bench.run(query, AccessPath::DirectRowWise);
        let col = bench.run(query, AccessPath::DirectColumnar);
        let rme = bench.run(query, AccessPath::RmeCold);
        assert_eq!(row.output, col.output);
        assert_eq!(row.output, rme.output);
        println!(
            "{:>3} | {:>16.1} | {:>16.1} | {:>16.1} | {:>8.2}x",
            k,
            row.measurement.elapsed_us(),
            col.measurement.elapsed_us(),
            rme.measurement.elapsed_us(),
            row.measurement.elapsed_us() / rme.measurement.elapsed_us(),
        );
    }
    println!(
        "\nThe RME never pays for unrequested columns (unlike the row store) and never pays\n\
         tuple reconstruction or extra prefetch streams (unlike the column store)."
    );
}
