//! HTAP with MVCC: transactional updates on the row store while analytical
//! queries read consistent snapshots through ephemeral variables.
//!
//! This exercises Section 4 of the paper: the base data stays row-major and
//! writable (appends, in-place updates, deletes via begin/end timestamps);
//! every ephemeral variable carries a snapshot and the engine filters row
//! versions while packing, so analytics always see exactly the rows valid at
//! their snapshot — without maintaining a second copy of the data.
//!
//! Run with: `cargo run --release --example htap_mvcc`

use relational_memory::core::system::{RowEffect, ScanSource};
use relational_memory::prelude::*;
use relmem_sim::SimTime;

fn main() {
    let mut system = System::with_revision(HwRevision::Mlp, 64 << 20);

    // An orders table: (order_id, customer, amount, status), versioned.
    let schema = Schema::new(vec![
        relational_memory::storage::ColumnDef::new("order_id", ColumnType::UInt(8)),
        relational_memory::storage::ColumnDef::new("customer", ColumnType::UInt(4)),
        relational_memory::storage::ColumnDef::new("amount", ColumnType::UInt(8)),
        relational_memory::storage::ColumnDef::new("status", ColumnType::UInt(4)),
    ])
    .unwrap();
    let orders = system
        .create_table(schema, 80_000, MvccConfig::Enabled)
        .expect("table fits");

    // OLTP phase 1 (ts 1..=10): ingest 20 000 orders.
    for i in 0..20_000u64 {
        let row = Row::from_u64s(&[i, i % 500, 10 + (i * 7) % 990, 0]);
        orders.append(system.mem_mut(), &row, 1 + i % 10).unwrap();
    }
    // OLAP snapshot A taken now, at ts 10.
    let snapshot_a = Snapshot::at(10);

    // OLTP phase 2 (ts 11..=20): cancel every 10th order (delete), ship every
    // 3rd (update status -> 2), and ingest 5 000 more orders.
    for i in (0..20_000u64).step_by(10) {
        orders.mark_deleted(system.mem_mut(), i, 11).unwrap();
    }
    for i in (0..20_000u64).step_by(3) {
        if i % 10 != 0 {
            let amount = orders
                .read_field(system.mem(), i, 2)
                .unwrap()
                .as_u64();
            let new = Row::from_u64s(&[i, i % 500, amount, 2]);
            orders.update(system.mem_mut(), i, &new, 15).unwrap();
        }
    }
    for i in 20_000..25_000u64 {
        let row = Row::from_u64s(&[i, i % 500, 10 + (i * 7) % 990, 0]);
        orders.append(system.mem_mut(), &row, 18).unwrap();
    }
    let snapshot_b = Snapshot::at(20);

    // OLAP: SELECT SUM(amount) over each snapshot, through ephemeral
    // variables projecting only (amount). The engine filters versions by the
    // snapshot while packing.
    let amount_col = orders.schema().index_of("amount").unwrap();
    let mut revenue_at = |snap: Snapshot| {
        let var = system
            .register_ephemeral(&orders, ColumnGroup::new(vec![amount_col]).unwrap(), Some(snap))
            .expect("registration succeeds");
        system.begin_measurement(AccessPath::RmeCold);
        let agg = system.cost_model().aggregate();
        let mut sum = 0u64;
        let src = ScanSource::Ephemeral { var: &var };
        let (end, cpu, rows) = system.scan(&src, SimTime::ZERO, |_, v| {
            sum = sum.wrapping_add(v[0]);
            RowEffect { cpu: agg, touch: None }
        });
        let m = system.finish_measurement(end, cpu, AccessPath::RmeCold);
        (sum, rows, m)
    };

    let (rev_a, rows_a, m_a) = revenue_at(snapshot_a);
    let (rev_b, rows_b, m_b) = revenue_at(snapshot_b);

    println!("snapshot A (ts=10): {rows_a} live orders, total amount {rev_a}");
    println!(
        "    analytical scan: {:.1} us, {} rows filtered out by the engine",
        m_a.elapsed_us(),
        m_a.rme.rows_filtered
    );
    println!("snapshot B (ts=20): {rows_b} live orders, total amount {rev_b}");
    println!(
        "    analytical scan: {:.1} us, {} rows filtered out by the engine",
        m_b.elapsed_us(),
        m_b.rme.rows_filtered
    );

    // Sanity: snapshot A must be completely unaffected by phase-2 activity.
    assert_eq!(rows_a, 20_000);
    assert!(rows_b > 20_000, "phase-2 inserts are visible at snapshot B");
    assert!(m_b.rme.rows_filtered > 0, "old versions are filtered while packing");
    println!("\nsnapshot isolation holds: the ts=10 snapshot is unaffected by later updates.");
}
