//! Relational Memory — native in-memory accesses on rows and columns.
//!
//! A from-scratch Rust reproduction of *Relational Memory: Native In-Memory
//! Accesses on Rows and Columns* (EDBT 2023). The paper's FPGA-based
//! Relational Memory Engine (RME) is rebuilt as a functionally exact,
//! timing-modelled simulator; this facade crate re-exports the workspace's
//! public API so downstream users need a single dependency.
//!
//! * [`sim`] — timebase, clock domains, platform configuration, reporting.
//! * [`dram`] — byte-accurate physical memory + DRAM controller model.
//! * [`cache`] — L1/L2 cache hierarchy with a stream prefetcher.
//! * [`storage`] — schemas, row tables, column-store baseline, MVCC,
//!   compression, data generation.
//! * [`rme`] — the Relational Memory Engine itself (configuration port,
//!   requestor, fetch units, reorganization buffer, BSL/PCK/MLP revisions,
//!   area model).
//! * [`core`] — ephemeral variables, access paths, the query engine and the
//!   Relational Memory Benchmark (Q0–Q5).
//!
//! # Quickstart
//!
//! ```
//! use relational_memory::core::{AccessPath, Benchmark, BenchmarkParams, Query};
//!
//! // Build the paper's default benchmark relation (scaled down here) and
//! // compare a projection query across access paths.
//! let params = BenchmarkParams { rows: 2_000, ..BenchmarkParams::default() };
//! let mut bench = Benchmark::new(params);
//! let direct = bench.run(Query::Q1 { projectivity: 3 }, AccessPath::DirectRowWise);
//! let rme = bench.run(Query::Q1 { projectivity: 3 }, AccessPath::RmeCold);
//! assert_eq!(direct.output, rme.output);           // identical results
//! assert!(rme.measurement.elapsed < direct.measurement.elapsed); // and faster
//! ```

pub use relmem_cache as cache;
pub use relmem_core as core;
pub use relmem_dram as dram;
pub use relmem_rme as rme;
pub use relmem_sim as sim;
pub use relmem_storage as storage;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use relmem_core::{
        AccessPath, AdmissionConfig, Benchmark, BenchmarkParams, CoreScan, CpuCostModel,
        DegradePolicy, EphemeralVariable, OpenLoopOp, OpenLoopRun, OpenLoopStream,
        OpenLoopWorkload, Query, QueryMeasurement, QueryOutput, ShardedScan, System,
        SystemConfig, WorkloadError,
    };
    pub use relmem_rme::{HwRevision, RmeEngine, TableGeometry};
    pub use relmem_sim::{PlatformConfig, SimTime};
    pub use relmem_storage::{
        ColumnGroup, ColumnType, DataGen, MvccConfig, Row, RowTable, Schema, Snapshot, Value,
    };
}
